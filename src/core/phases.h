// Phases 1 and 2 of the compile-time verification (Section 2 of the paper):
//
//   Phase 1 — every collective must execute in a monothreaded context:
//     pw[n] must satisfy the mono rule (set S of violating collective nodes,
//     set Sipw of the enclosing parallel-region entries to re-check at
//     runtime, since `if`/`num_threads(1)` clauses can make a region
//     dynamically monothreaded).
//
//   Phase 2 — no two collectives may execute concurrently within a process:
//     collective nodes in *concurrent monothreaded regions*
//     (pw decompositions w S_j u / w S_k v, j != k) form set Scc, plus the
//     loop refinement: a single/section region inside a loop with no barrier
//     in the loop body may overlap itself across iterations.
#pragma once

#include "core/summaries.h"
#include "ir/module.h"
#include "support/diagnostics.h"

#include <string>
#include <vector>

namespace parcoach::core {

struct AnalysisOptions {
  /// Initial parallelism context for root functions (the paper's
  /// compile-time option).
  InitialContext initial_context = InitialContext::Serial;
  /// Analyze functions unreachable from main as standalone roots.
  bool analyze_unreachable_roots = true;
  /// Emit WordAmbiguity warnings for collectives at ambiguous nodes.
  bool warn_ambiguous = true;
};

/// A phase-1 violation: a collective whose context is not monothreaded.
struct MonoViolation {
  ir::CollectiveKind kind{};
  SourceLoc loc;
  int32_t stmt_id = -1;
  Word word;
  std::vector<SourceLoc> call_chain;
  /// Region id of the innermost enclosing parallel region (-1 when the
  /// multithreading comes from the initial context).
  int32_t sipw_region = -1;
  /// Communicator equivalence class of the collective ("" = world): a
  /// multithreaded collective can desynchronize exactly this comm's slot
  /// sequence, so the planner arms the CC protocol for this class only.
  std::string comm_class;
};

/// A phase-2 violation: two collectives in concurrent monothreaded regions
/// (or one collective in a region that can overlap itself across loop
/// iterations, in which case b_* mirror the a_* fields and `self` is set).
struct ConcurrencyViolation {
  ir::CollectiveKind a_kind{}, b_kind{};
  SourceLoc a_loc, b_loc;
  int32_t a_stmt = -1, b_stmt = -1;
  int32_t a_region = -1, b_region = -1; // the diverging S region ids (Scc)
  bool self = false;
  /// Comm equivalence classes of the two collectives ("" = world). A
  /// nondeterministic interleaving reorders each comm's slot sequence, so
  /// both classes need the CC protocol.
  std::string a_comm, b_comm;
};

struct PhaseResult {
  std::vector<MonoViolation> multithreaded;     // paper's set S (+ Sipw info)
  std::vector<ConcurrencyViolation> concurrent; // paper's sets S/Scc
  /// Region ids to watch at runtime (union of Scc regions).
  std::vector<int32_t> watched_regions;
  /// Stmt ids of collectives that need runtime occupancy checks.
  std::vector<int32_t> mono_check_stmts;
  /// Sorted union of the comm classes of all phase-1/2 violations: the
  /// classes an intra-process hazard can desynchronize. Feeds the per-class
  /// CC arming decision exactly like Algorithm1Result::divergent_classes.
  std::vector<std::string> hazard_classes;
};

/// Runs phases 1 and 2 over the whole program. Roots: `main` when present;
/// optionally every function not reachable from main. Reports
/// MultithreadedCollective / ConcurrentCollectives / WordAmbiguity warnings.
[[nodiscard]] PhaseResult run_phases(const ir::Module& m, const Summaries& sums,
                                     const AnalysisOptions& opts,
                                     DiagnosticEngine& diags);

} // namespace parcoach::core
