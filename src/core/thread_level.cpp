#include "core/thread_level.h"

#include "support/str.h"

namespace parcoach::core {

ir::ThreadLevel required_level(const Word& word, bool program_has_threads) noexcept {
  if (!word.monothreaded()) return ir::ThreadLevel::Multiple;
  const WordToken* s = word.innermost_single();
  if (!s) {
    // Serial context. If the program forks threads anywhere, the process is
    // multithreaded and the standard requires at least FUNNELED for
    // communication from the main thread.
    return program_has_threads ? ir::ThreadLevel::Funneled
                               : ir::ThreadLevel::Single;
  }
  // Master regions always execute on the main thread -> FUNNELED suffices.
  if (s->omp == ir::OmpKind::Master) return ir::ThreadLevel::Funneled;
  // single/section: any thread of the team may execute -> SERIALIZED.
  return ir::ThreadLevel::Serialized;
}

ThreadLevelResult check_thread_levels(const ir::Module& m, const Summaries& sums,
                                      DiagnosticEngine& diags) {
  ThreadLevelResult result;
  bool program_has_threads = false;
  for (const auto& [name, fs] : sums.all())
    program_has_threads |= fs.has_parallel_region;

  const std::string root = m.find("main") ? "main" : "";
  std::vector<Summaries::Expanded> sites;
  if (!root.empty()) {
    sites = sums.expand_from(root, Word{});
  } else {
    for (const auto& fn : m.functions())
      for (auto& e : sums.expand_from(fn->name, Word{}))
        sites.push_back(std::move(e));
  }

  for (const auto& e : sites) {
    if (e.truncated_by_recursion) continue;
    LevelRequirement req;
    req.required = required_level(e.word, program_has_threads);
    req.loc = e.loc;
    req.kind = e.kind;
    req.word = e.word;
    if (static_cast<int>(req.required) > static_cast<int>(result.required))
      result.required = req.required;
    result.per_call.push_back(std::move(req));
  }

  if (m.requested_thread_level &&
      static_cast<int>(result.required) >
          static_cast<int>(*m.requested_thread_level)) {
    result.violation = true;
    // Attach the first offending call for a precise message.
    for (const auto& r : result.per_call) {
      if (r.required != result.required) continue;
      diags.report(
          Severity::Warning, DiagKind::ThreadLevelViolation, r.loc,
          str::cat(ir::to_string(r.kind), " requires MPI_THREAD_",
                   ir::to_string(r.required), " but mpi_init requested MPI_THREAD_",
                   ir::to_string(*m.requested_thread_level), " (word [",
                   r.word.str(), "])"));
      break;
    }
  }
  return result;
}

} // namespace parcoach::core
