#include "driver/report.h"

#include "support/str.h"

#include <iomanip>
#include <sstream>

namespace parcoach::driver {

WarningCensus census_of(const std::string& name, const CompileResult& r,
                        const DiagnosticEngine& diags) {
  WarningCensus c;
  c.program = name;
  c.functions = r.program.funcs.size();
  if (r.module) {
    for (const auto& fn : r.module->functions()) {
      for (const auto& bb : fn->blocks()) {
        for (const auto& in : bb.instrs) {
          c.collectives += in.op == ir::Opcode::CollComm;
          c.parallel_regions += in.op == ir::Opcode::OmpBegin &&
                                in.omp == ir::OmpKind::Parallel;
        }
      }
    }
  }
  c.multithreaded = diags.count(DiagKind::MultithreadedCollective);
  c.concurrent = diags.count(DiagKind::ConcurrentCollectives);
  c.mismatch = r.algorithm1.conditionals_flagged_unfiltered;
  c.mismatch_filtered = r.algorithm1.conditionals_flagged_filtered;
  c.thread_level = diags.count(DiagKind::ThreadLevelViolation);
  c.checks_inserted = r.inserted_checks;
  c.total_collective_sites = r.plan.total_collective_sites;
  c.cc_sites_armed = r.plan.cc_stmts.size();
  c.cc_classes_armed = r.plan.cc_classes.size();
  c.cc_classes_total = r.plan.total_cc_classes;
  return c;
}

std::string format_census_table(const std::vector<WarningCensus>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "program" << std::right << std::setw(8)
     << "lines" << std::setw(7) << "funcs" << std::setw(7) << "colls"
     << std::setw(7) << "par" << std::setw(8) << "ph1" << std::setw(8) << "ph2"
     << std::setw(8) << "ph3" << std::setw(10) << "ph3-rank" << std::setw(7)
     << "lvl" << std::setw(9) << "checks" << std::setw(9) << "armed"
     << std::setw(8) << "comms" << '\n';
  for (const auto& c : rows) {
    os << std::left << std::setw(14) << c.program << std::right << std::setw(8)
       << c.code_lines << std::setw(7) << c.functions << std::setw(7)
       << c.collectives << std::setw(7) << c.parallel_regions << std::setw(8)
       << c.multithreaded << std::setw(8) << c.concurrent << std::setw(8)
       << c.mismatch << std::setw(10) << c.mismatch_filtered << std::setw(7)
       << c.thread_level << std::setw(9) << c.checks_inserted << std::setw(9)
       << c.cc_sites_armed << std::setw(8)
       << (std::to_string(c.cc_classes_armed) + "/" +
           std::to_string(c.cc_classes_total))
       << '\n';
  }
  return os.str();
}

std::string format_stage_times(const StageTimes& t) {
  auto ms = [](std::chrono::nanoseconds ns) {
    return static_cast<double>(ns.count()) / 1e6;
  };
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "parse=" << ms(t.parse) << "ms sema=" << ms(t.sema)
     << "ms lower=" << ms(t.lower) << "ms opt=" << ms(t.optimize)
     << "ms emit=" << ms(t.emit) << "ms | analysis=" << ms(t.analysis)
     << "ms instrument=" << ms(t.instrument) << "ms | baseline="
     << ms(t.baseline()) << "ms total=" << ms(t.total()) << "ms";
  return os.str();
}

std::string format_run_summary(const interp::ExecResult& r) {
  std::ostringstream os;
  os << "engine=" << r.mpi.engine << " steps=" << r.steps_executed;
  if (r.mpi.bytecode_ops > 0) os << " bytecode_ops=" << r.mpi.bytecode_ops;
  os << " slots=" << r.mpi.app_slots_completed
     << " cc_piggybacked=" << r.mpi.cc_piggybacked;
  if (r.mpi.total_collective_sites > 0)
    os << " cc_armed=" << r.mpi.cc_sites_armed << "/"
       << r.mpi.total_collective_sites << " classes="
       << r.mpi.cc_classes_armed << "/" << r.mpi.cc_classes_total;
  if (!r.mpi.metrics.empty()) {
    os << " | metrics:";
    for (const auto& [name, value] : r.mpi.metrics)
      os << ' ' << name << '=' << value;
  }
  return os.str();
}

} // namespace parcoach::driver
