#include "driver/pipeline.h"

#include "core/summaries.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/pass_manager.h"

namespace parcoach::driver {

namespace {

class StageClock {
public:
  explicit StageClock(std::chrono::nanoseconds& out)
      : out_(out), start_(std::chrono::steady_clock::now()) {}
  ~StageClock() { out_ += std::chrono::steady_clock::now() - start_; }

private:
  std::chrono::nanoseconds& out_;
  std::chrono::steady_clock::time_point start_;
};

} // namespace

CompileResult compile_buffer(const SourceManager& sm, int32_t file_id,
                             DiagnosticEngine& diags,
                             const PipelineOptions& opts) {
  CompileResult r;

  {
    StageClock c(r.times.parse);
    r.program = frontend::Parser::parse(sm, file_id, diags);
  }
  if (diags.has_errors()) return r;

  {
    StageClock c(r.times.sema);
    const auto sema = frontend::Sema::analyze(r.program, diags);
    if (!sema.ok) return r;
  }

  {
    StageClock c(r.times.lower);
    r.module = frontend::Lowering::lower(r.program, diags);
  }
  if (opts.verify_ir && !ir::verify(*r.module, diags)) return r;

  if (opts.optimize) {
    StageClock c(r.times.optimize);
    auto pm = passes::PassManager::standard_pipeline();
    pm.run(*r.module);
  }

  if (opts.mode != Mode::Baseline) {
    StageClock c(r.times.analysis);
    const core::Summaries sums = core::Summaries::build(*r.module);
    r.phases = core::run_phases(*r.module, sums, opts.analysis, diags);
    r.algorithm1 = core::run_algorithm1(*r.module, sums, opts.algorithm1, diags);
    r.thread_levels = core::check_thread_levels(*r.module, sums, diags);
  }

  if (opts.mode == Mode::WarningsAndCodegen) {
    StageClock c(r.times.instrument);
    r.plan = core::make_plan(*r.module, r.phases, r.algorithm1);
    r.inserted_checks = core::apply_plan(*r.module, r.plan);
  }

  {
    StageClock c(r.times.emit);
    r.emitted = ir::to_text(*r.module);
    r.emitted_bytes = r.emitted.size();
  }

  r.ok = !diags.has_errors();
  return r;
}

CompileResult compile(SourceManager& sm, std::string name, std::string source,
                      DiagnosticEngine& diags, const PipelineOptions& opts) {
  const int32_t id = sm.add_buffer(std::move(name), std::move(source));
  return compile_buffer(sm, id, diags, opts);
}

} // namespace parcoach::driver
