// The full compilation pipeline, with per-stage wall-clock accounting.
//
// Three modes mirror the Figure-1 experiment:
//   Baseline            lex -> parse -> sema -> lower -> verify-free optimize
//                       -> emit (textual codegen)
//   Warnings            + interprocedural summaries + phases 1/2 +
//                       Algorithm 1 + thread-level inference (warnings only)
//   WarningsAndCodegen  + instrumentation plan + IR materialization + re-emit
//                       ("verification code generation")
#pragma once

#include "core/algorithm1.h"
#include "core/instrumentation.h"
#include "core/phases.h"
#include "core/thread_level.h"
#include "frontend/ast.h"
#include "ir/module.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

#include <chrono>
#include <memory>
#include <string>

namespace parcoach::driver {

enum class Mode : uint8_t { Baseline, Warnings, WarningsAndCodegen };

struct PipelineOptions {
  Mode mode = Mode::WarningsAndCodegen;
  core::AnalysisOptions analysis;
  core::Algorithm1Options algorithm1;
  /// Run the standard optimization pipeline (part of the baseline cost).
  bool optimize = true;
  /// Run the IR verifier after lowering (debug pipelines; not timed as part
  /// of the baseline since production compilers do not run it).
  bool verify_ir = false;
};

struct StageTimes {
  using ns = std::chrono::nanoseconds;
  ns parse{0};
  ns sema{0};
  ns lower{0};
  ns optimize{0};
  ns emit{0};
  ns analysis{0};    // summaries + phases + algorithm 1 + thread levels
  ns instrument{0};  // plan + IR materialization + re-emit

  [[nodiscard]] ns baseline() const { return parse + sema + lower + optimize + emit; }
  [[nodiscard]] ns total() const { return baseline() + analysis + instrument; }
};

struct CompileResult {
  bool ok = false;
  frontend::Program program;
  std::unique_ptr<ir::Module> module;
  core::PhaseResult phases;
  core::Algorithm1Result algorithm1;
  core::ThreadLevelResult thread_levels;
  core::InstrumentationPlan plan;
  StageTimes times;
  /// Emitted textual artifact (instrumented when mode == WarningsAndCodegen).
  std::string emitted;
  size_t emitted_bytes = 0;
  size_t inserted_checks = 0;
};

/// Compiles `source` (registered with `sm` under `name`). All diagnostics —
/// front-end errors and analysis warnings — go to `diags`.
[[nodiscard]] CompileResult compile(SourceManager& sm, std::string name,
                                    std::string source, DiagnosticEngine& diags,
                                    const PipelineOptions& opts);

/// Re-runs only the compile pipeline on an already-registered buffer (used
/// by benches to measure repeatedly without re-registering sources).
[[nodiscard]] CompileResult compile_buffer(const SourceManager& sm,
                                           int32_t file_id,
                                           DiagnosticEngine& diags,
                                           const PipelineOptions& opts);

} // namespace parcoach::driver
