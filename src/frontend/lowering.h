// AST -> CFG lowering.
//
// Produces the IR shape the paper's analyses expect:
//   - OpenMP directive boundaries (OmpBegin/OmpEnd) each in their own basic
//     block;
//   - implicit barriers as dedicated ImplicitBarrier blocks (after `single`,
//     `sections` and worksharing `for` unless nowait);
//   - a unique synthetic exit block per function, targeted by all returns,
//     so post-dominators are total;
//   - every IR instruction tagged with the originating AST stmt_id, linking
//     the instrumentation plan back to executable statements.
#pragma once

#include "frontend/ast.h"
#include "ir/module.h"
#include "support/diagnostics.h"

#include <memory>

namespace parcoach::frontend {

class Lowering {
public:
  /// Lowers a sema-checked program. Never fails on valid input; the caller
  /// should run ir::verify() afterwards in debug pipelines.
  static std::unique_ptr<ir::Module> lower(const Program& program,
                                           DiagnosticEngine& diags);
};

} // namespace parcoach::frontend
