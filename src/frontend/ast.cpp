#include "frontend/ast.h"

#include <cctype>
#include <sstream>

namespace parcoach::frontend {

const FuncDecl* Program::find(std::string_view name) const {
  for (const auto& f : funcs)
    if (f.name == name) return &f;
  return nullptr;
}

void walk_stmts(const std::vector<StmtPtr>& body,
                const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : body) {
    fn(*s);
    walk_stmts(s->body, fn);
    walk_stmts(s->else_body, fn);
  }
}

namespace {

void indent(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << "  ";
}

void print_block(std::ostream& os, const std::vector<StmtPtr>& body, int depth);

// Prints the mpi_xxx(...) call expression part of an MpiCall statement.
void print_mpi_call(std::ostream& os, const Stmt& s) {
  using ir::CollectiveKind;
  if (s.is_mpi_init) {
    os << "mpi_init(" << ir::to_string(s.init_level) << ")";
    return;
  }
  if (s.is_mpi_abort) {
    os << "mpi_abort(" << to_string(*s.mpi_value) << ")";
    return;
  }
  switch (s.coll) {
    case CollectiveKind::Barrier:
      os << "mpi_barrier(";
      if (s.mpi_comm) os << to_string(*s.mpi_comm);
      os << ')';
      return;
    case CollectiveKind::Finalize: os << "mpi_finalize()"; return;
    case CollectiveKind::CommSplit:
      os << "mpi_comm_split(" << to_string(*s.mpi_value) << ", "
         << to_string(*s.mpi_root);
      if (s.mpi_comm) os << ", " << to_string(*s.mpi_comm);
      os << ')';
      return;
    case CollectiveKind::CommDup:
      os << "mpi_comm_dup(";
      if (s.mpi_comm) os << to_string(*s.mpi_comm);
      os << ')';
      return;
    case CollectiveKind::CommFree:
      os << "mpi_comm_free(" << to_string(*s.mpi_comm) << ')';
      return;
    case CollectiveKind::CommSetErrhandler:
      os << "mpi_comm_set_errhandler(" << to_string(*s.mpi_value);
      if (s.mpi_comm) os << ", " << to_string(*s.mpi_comm);
      os << ')';
      return;
    case CollectiveKind::CommRevoke:
      os << "mpi_comm_revoke(";
      if (s.mpi_comm) os << to_string(*s.mpi_comm);
      os << ')';
      return;
    case CollectiveKind::CommShrink:
      os << "mpi_comm_shrink(";
      if (s.mpi_comm) os << to_string(*s.mpi_comm);
      os << ')';
      return;
    case CollectiveKind::CommAgree:
      os << "mpi_comm_agree(";
      if (s.mpi_comm) os << to_string(*s.mpi_comm) << ", ";
      os << to_string(*s.mpi_value) << ')';
      return;
    default: break;
  }
  // Name: MPI_Reduce_scatter -> mpi_reduce_scatter.
  std::string name(ir::to_string(s.coll));
  for (auto& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  os << name << '(';
  // Payload-less collectives (mpi_ibarrier) may still carry a comm, so the
  // separator depends on what was actually printed, not on position.
  bool first = true;
  auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  if (s.mpi_value) { sep(); os << to_string(*s.mpi_value); }
  if (s.reduce_op) { sep(); os << ir::to_string(*s.reduce_op); }
  if (s.mpi_root) { sep(); os << to_string(*s.mpi_root); }
  if (s.mpi_comm) { sep(); os << to_string(*s.mpi_comm); }
  os << ')';
}

void print_stmt(std::ostream& os, const Stmt& s, int depth) {
  indent(os, depth);
  switch (s.kind) {
    case StmtKind::VarDecl:
      os << "var " << s.name << " = " << to_string(*s.value) << ";\n";
      break;
    case StmtKind::Assign:
      os << s.name << " = " << to_string(*s.value) << ";\n";
      break;
    case StmtKind::If:
      os << "if (" << to_string(*s.value) << ") ";
      print_block(os, s.body, depth);
      if (!s.else_body.empty()) {
        indent(os, depth);
        os << "else ";
        print_block(os, s.else_body, depth);
      }
      break;
    case StmtKind::While:
      os << "while (" << to_string(*s.value) << ") ";
      print_block(os, s.body, depth);
      break;
    case StmtKind::For:
      os << "for (" << s.name << " = " << to_string(*s.lo) << " to "
         << to_string(*s.hi) << ") ";
      print_block(os, s.body, depth);
      break;
    case StmtKind::Return:
      os << "return";
      if (s.value) os << ' ' << to_string(*s.value);
      os << ";\n";
      break;
    case StmtKind::Print: {
      os << "print(";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*s.args[i]);
      }
      os << ");\n";
      break;
    }
    case StmtKind::CallStmt: {
      if (!s.name.empty()) os << s.name << " = ";
      os << s.callee << '(';
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*s.args[i]);
      }
      os << ");\n";
      break;
    }
    case StmtKind::MpiCall:
      if (!s.name.empty()) os << s.name << " = ";
      print_mpi_call(os, s);
      os << ";\n";
      break;
    case StmtKind::OmpParallel:
      os << "omp parallel";
      if (s.num_threads) os << " num_threads(" << to_string(*s.num_threads) << ')';
      if (s.if_clause) os << " if(" << to_string(*s.if_clause) << ')';
      os << ' ';
      print_block(os, s.body, depth);
      break;
    case StmtKind::OmpSingle:
      os << "omp single" << (s.nowait ? " nowait " : " ");
      print_block(os, s.body, depth);
      break;
    case StmtKind::OmpMaster:
      os << "omp master ";
      print_block(os, s.body, depth);
      break;
    case StmtKind::OmpCritical:
      os << "omp critical ";
      print_block(os, s.body, depth);
      break;
    case StmtKind::OmpBarrier:
      os << "omp barrier;\n";
      break;
    case StmtKind::OmpSections:
      os << "omp sections" << (s.nowait ? " nowait " : " ");
      print_block(os, s.body, depth);
      break;
    case StmtKind::OmpSection:
      os << "omp section ";
      print_block(os, s.body, depth);
      break;
    case StmtKind::OmpFor:
      os << "omp for" << (s.nowait ? " nowait" : "") << " (" << s.name << " = "
         << to_string(*s.lo) << " to " << to_string(*s.hi) << ") ";
      print_block(os, s.body, depth);
      break;
    case StmtKind::MpiSend:
      os << "mpi_send(" << to_string(*s.mpi_value) << ", "
         << to_string(*s.mpi_root) << ", " << to_string(*s.hi) << ");\n";
      break;
    case StmtKind::MpiRecv:
      if (!s.name.empty()) os << s.name << " = ";
      os << "mpi_recv(" << to_string(*s.mpi_root) << ", " << to_string(*s.hi)
         << ");\n";
      break;
    case StmtKind::MpiWait:
      if (!s.name.empty()) os << s.name << " = ";
      os << "mpi_wait(" << to_string(*s.mpi_value) << ");\n";
      break;
    case StmtKind::MpiTest:
      if (!s.name.empty()) os << s.name << " = ";
      os << "mpi_test(" << to_string(*s.mpi_value) << ");\n";
      break;
    case StmtKind::MpiWaitall: {
      os << "mpi_waitall(";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*s.args[i]);
      }
      os << ");\n";
      break;
    }
  }
}

void print_block(std::ostream& os, const std::vector<StmtPtr>& body, int depth) {
  os << "{\n";
  for (const auto& s : body) print_stmt(os, *s, depth + 1);
  indent(os, depth);
  os << "}\n";
}

} // namespace

std::string to_source(const FuncDecl& f) {
  std::ostringstream os;
  os << "func " << f.name << '(';
  for (size_t i = 0; i < f.params.size(); ++i) {
    if (i) os << ", ";
    os << f.params[i];
  }
  os << ") ";
  print_block(os, f.body, 0);
  return os.str();
}

std::string to_source(const Program& p) {
  std::ostringstream os;
  for (const auto& f : p.funcs) os << to_source(f) << '\n';
  return os.str();
}

} // namespace parcoach::frontend
