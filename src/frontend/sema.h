// Semantic analysis for MiniHPC.
//
// Checks name/scope rules, call arities, and the OpenMP nesting legality
// rules that the lowering and the parallelism-word analysis rely on:
//   - `omp barrier` may not be closely nested inside single / master /
//     critical / section / worksharing regions;
//   - worksharing constructs (single, sections, for) may not be closely
//     nested inside another worksharing, single, master, critical or
//     section region of the same team (no intervening parallel);
//   - `critical` may not be closely nested inside `critical` (self-deadlock);
//   - `return` may not branch out of an OpenMP structured block.
#pragma once

#include "frontend/ast.h"
#include "support/diagnostics.h"

#include <optional>

namespace parcoach::frontend {

struct SemaResult {
  bool ok = false;
  /// Thread level requested by mpi_init, if the program contains one.
  std::optional<ir::ThreadLevel> requested_thread_level;
  bool has_mpi_init = false;
  bool has_mpi_finalize = false;
};

class Sema {
public:
  /// Analyzes the program; reports errors/warnings to `diags`.
  static SemaResult analyze(const Program& program, DiagnosticEngine& diags);
};

} // namespace parcoach::frontend
