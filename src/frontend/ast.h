// MiniHPC abstract syntax tree.
//
// Statements carry dense `stmt_id`s (module-wide) so the instrumentation
// plan produced by the static analysis can be keyed by statement, and omp
// constructs carry dense `region_id`s shared with the lowered IR. The
// interpreter executes this AST; the analyses run on the lowered CFG.
// Expressions reuse ir::Expr (they are built side-effect free by
// construction: user calls and MPI operations are statements).
#pragma once

#include "ir/collective.h"
#include "ir/expr.h"
#include "ir/instruction.h"
#include "ir/omp.h"
#include "support/source_location.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace parcoach::frontend {

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  VarDecl,   // var NAME = expr;
  Assign,    // NAME = expr;
  If,        // if (cond) body [else else_body]
  While,     // while (cond) body
  For,       // for (NAME = lo to hi) body       -- iterates [lo, hi)
  Return,    // return [expr];
  Print,     // print(args...);
  CallStmt,  // [NAME =] callee(args...);
  MpiCall,   // [NAME =] mpi_xxx(...); includes mpi_init / mpi_finalize
  OmpParallel,
  OmpSingle,
  OmpMaster,
  OmpCritical,
  OmpBarrier,
  OmpSections, // body holds OmpSection statements only
  OmpSection,
  OmpFor,      // worksharing loop: for (NAME = lo to hi) distributed
  MpiSend,     // mpi_send(value, dest, tag);
  MpiRecv,     // NAME = mpi_recv(source, tag);
  MpiWait,     // [NAME =] mpi_wait(request);   completes a nonblocking op
  MpiTest,     // NAME = mpi_test(request);     1 when complete, else 0
  MpiWaitall,  // mpi_waitall(r1, r2, ...);
};

struct Stmt {
  StmtKind kind;
  int32_t stmt_id = -1;
  SourceLoc loc;

  // VarDecl/Assign/For/OmpFor loop variable, CallStmt/MpiCall result target.
  std::string name;
  // CallStmt callee.
  std::string callee;
  // True for `var x = f(...)` / `var x = mpi_xxx(...)`: the call statement
  // also declares its target variable.
  bool declares_target = false;

  ir::ExprPtr value;          // VarDecl/Assign value; If/While cond; Return value
  ir::ExprPtr lo, hi;         // For/OmpFor bounds
  std::vector<ir::ExprPtr> args; // Print/CallStmt arguments

  // MpiSend/MpiRecv payload (value/dest/source/tag reuse mpi_value, mpi_root
  // and `hi` as the tag slot). MpiWait/MpiTest reuse mpi_value as the request
  // expression; MpiWaitall keeps its requests in `args`.
  // MpiCall payload.
  ir::CollectiveKind coll{};
  bool is_mpi_init = false;
  bool is_mpi_abort = false; // mpi_abort(code); mpi_value carries the code
  ir::ThreadLevel init_level{};
  ir::ExprPtr mpi_value;                 // payload expression; split color
  ir::ExprPtr mpi_root;                  // root rank expression; split key
  std::optional<ir::ReduceOp> reduce_op;
  /// Optional trailing communicator argument (null = MPI_COMM_WORLD); the
  /// managed handle for mpi_comm_dup / mpi_comm_free.
  ir::ExprPtr mpi_comm;

  // Omp construct payload.
  int32_t region_id = -1;
  bool nowait = false;
  ir::ExprPtr num_threads; // parallel clause (may be null)
  ir::ExprPtr if_clause;   // parallel clause (may be null)

  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  [[nodiscard]] bool is_omp() const noexcept {
    return kind >= StmtKind::OmpParallel && kind <= StmtKind::OmpFor;
  }
};

struct FuncDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

struct Program {
  std::vector<FuncDecl> funcs;
  int32_t num_stmts = 0;   // stmt_ids are in [0, num_stmts)
  int32_t num_regions = 0; // region_ids are in [0, num_regions)

  [[nodiscard]] const FuncDecl* find(std::string_view name) const;
};

/// Walks all statements of a function (pre-order, including nested bodies).
void walk_stmts(const std::vector<StmtPtr>& body,
                const std::function<void(const Stmt&)>& fn);

/// Renders the program back to parseable MiniHPC source (used by tests for
/// round-tripping and by examples to show generated workloads).
[[nodiscard]] std::string to_source(const Program& p);
[[nodiscard]] std::string to_source(const FuncDecl& f);

} // namespace parcoach::frontend
