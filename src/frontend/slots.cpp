#include "frontend/slots.h"

namespace parcoach::frontend {

namespace {

/// One function's resolution walk. Mirrors the interpreter's Env chain
/// exactly: a scope per block, per for-loop, per OpenMP region body, so
/// shadowing resolves to the same declaration the tree-walker would find.
class FuncResolver {
public:
  FuncResolver(const Program& program, SlotMap& out)
      : program_(program), out_(out) {}

  void run(const FuncDecl& fn) {
    FunctionSlots fs;
    num_slots_ = 0;
    scopes_.clear();
    push();
    for (const auto& p : fn.params) fs.param_slots.push_back(declare(p));
    block(fn.body);
    pop();
    fs.num_slots = num_slots_;
    out_.funcs.emplace(&fn, std::move(fs));
  }

private:
  using Scope = std::unordered_map<std::string, int32_t>;

  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  int32_t declare(const std::string& name) {
    const int32_t slot = num_slots_++;
    scopes_.back()[name] = slot;
    return slot;
  }

  int32_t lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    return -1;
  }

  void expr(const ir::Expr* e) {
    if (!e) return;
    if (e->kind == ir::Expr::Kind::VarRef) {
      const int32_t slot = lookup(e->var);
      if (slot >= 0)
        out_.expr_slots.emplace(e, slot);
      else
        out_.issues.push_back({e->loc, e->var, false});
    }
    for (const auto& k : e->kids) expr(k.get());
  }

  void block(const std::vector<StmtPtr>& body) {
    push();
    for (const auto& s : body) stmt(*s);
    pop();
  }

  /// Region body with its own scope (single/master/section/critical/parallel
  /// thread view): the interpreter nests a scope around exec_block's own.
  void region(const std::vector<StmtPtr>& body) {
    push();
    block(body);
    pop();
  }

  /// Resolves (or declares) a statement's result target, recording the slot.
  void target(const Stmt& s) {
    if (s.name.empty()) return;
    const int32_t slot = s.declares_target ? declare(s.name) : lookup(s.name);
    if (slot >= 0)
      out_.stmt_slots.emplace(&s, slot);
    else
      out_.issues.push_back({s.loc, s.name, false});
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::VarDecl:
        // Declaration-before-initializer, like Env::declare runs before
        // eval: `var x = x + 1;` reads the *new* (zeroed) x.
        out_.stmt_slots.emplace(&s, declare(s.name));
        expr(s.value.get());
        return;
      case StmtKind::Assign: {
        const int32_t slot = lookup(s.name);
        if (slot >= 0)
          out_.stmt_slots.emplace(&s, slot);
        else
          out_.issues.push_back({s.loc, s.name, false});
        expr(s.value.get());
        return;
      }
      case StmtKind::If:
        expr(s.value.get());
        block(s.body);
        block(s.else_body);
        return;
      case StmtKind::While:
        expr(s.value.get());
        block(s.body);
        return;
      case StmtKind::For:
        expr(s.hi.get());
        expr(s.lo.get());
        push();
        out_.stmt_slots.emplace(&s, declare(s.name));
        block(s.body);
        pop();
        return;
      case StmtKind::Return:
        expr(s.value.get());
        return;
      case StmtKind::Print:
        for (const auto& a : s.args) expr(a.get());
        return;
      case StmtKind::CallStmt:
        if (!program_.find(s.callee))
          out_.issues.push_back({s.loc, s.callee, true});
        for (const auto& a : s.args) expr(a.get());
        target(s);
        return;
      case StmtKind::MpiCall:
        expr(s.mpi_root.get());
        expr(s.mpi_value.get());
        expr(s.mpi_comm.get());
        target(s);
        return;
      case StmtKind::MpiSend:
        expr(s.mpi_value.get());
        expr(s.mpi_root.get());
        expr(s.hi.get());
        return;
      case StmtKind::MpiRecv:
      case StmtKind::MpiWait:
      case StmtKind::MpiTest:
        expr(s.mpi_value.get());
        expr(s.mpi_root.get());
        expr(s.hi.get());
        target(s);
        return;
      case StmtKind::MpiWaitall:
        for (const auto& a : s.args) expr(a.get());
        return;
      case StmtKind::OmpParallel:
        expr(s.num_threads.get());
        expr(s.if_clause.get());
        region(s.body);
        return;
      case StmtKind::OmpSingle:
      case StmtKind::OmpMaster:
      case StmtKind::OmpCritical:
      case StmtKind::OmpSection:
        region(s.body);
        return;
      case StmtKind::OmpBarrier:
        return;
      case StmtKind::OmpSections:
        for (const auto& sec : s.body) stmt(*sec);
        return;
      case StmtKind::OmpFor:
        expr(s.lo.get());
        expr(s.hi.get());
        push();
        out_.stmt_slots.emplace(&s, declare(s.name));
        block(s.body);
        pop();
        return;
    }
  }

  const Program& program_;
  SlotMap& out_;
  int32_t num_slots_ = 0;
  std::vector<Scope> scopes_;
};

} // namespace

SlotMap resolve_slots(const Program& program) {
  SlotMap out;
  for (const auto& fn : program.funcs) FuncResolver(program, out).run(fn);
  return out;
}

} // namespace parcoach::frontend
