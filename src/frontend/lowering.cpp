#include "frontend/lowering.h"

#include "support/str.h"

namespace parcoach::frontend {

namespace {

using ir::BlockId;
using ir::Function;
using ir::Instruction;
using ir::Opcode;

class Lowerer {
public:
  Lowerer(ir::Module& mod, DiagnosticEngine& diags) : mod_(mod), diags_(diags) {}

  void lower_function(const FuncDecl& f) {
    fn_ = &mod_.add_function(f.name);
    fn_->params = f.params;
    fn_->entry = fn_->add_block();
    fn_->exit = fn_->add_block();
    cur_ = fn_->entry;
    lower_body(f.body);
    // Fall-through return for functions whose last path reaches the end.
    if (!fn_->block(cur_).has_terminator()) {
      Instruction ret;
      ret.op = Opcode::Return;
      ret.loc = f.loc;
      append(std::move(ret));
      fn_->add_edge(cur_, fn_->exit);
    }
    fn_->recompute_preds();
  }

private:
  void append(Instruction in) { fn_->block(cur_).instrs.push_back(std::move(in)); }

  /// Ends the current block with an unconditional branch to a fresh block
  /// and makes that block current.
  BlockId branch_to_new_block(SourceLoc loc, int32_t stmt_id) {
    const BlockId next = fn_->add_block();
    Instruction br;
    br.op = Opcode::Br;
    br.loc = loc;
    br.stmt_id = stmt_id;
    append(std::move(br));
    fn_->add_edge(cur_, next);
    cur_ = next;
    return next;
  }

  /// Emits `in` alone in a dedicated block: [br] -> [in; br] -> [next].
  void emit_boundary_block(Instruction in) {
    const SourceLoc loc = in.loc;
    const int32_t sid = in.stmt_id;
    branch_to_new_block(loc, sid);
    append(std::move(in));
    branch_to_new_block(loc, sid);
  }

  void lower_body(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) lower_stmt(*s);
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::VarDecl:
      case StmtKind::Assign: {
        Instruction in;
        in.op = Opcode::Assign;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        in.var = s.name;
        in.expr = s.value->clone();
        append(std::move(in));
        break;
      }
      case StmtKind::Print: {
        Instruction in;
        in.op = Opcode::Print;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        for (const auto& a : s.args) in.args.push_back(a->clone());
        append(std::move(in));
        break;
      }
      case StmtKind::CallStmt: {
        Instruction in;
        in.op = Opcode::Call;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        in.var = s.name;
        in.callee = s.callee;
        for (const auto& a : s.args) in.args.push_back(a->clone());
        append(std::move(in));
        break;
      }
      case StmtKind::MpiSend: {
        Instruction in;
        in.op = Opcode::SendMsg;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        in.args.push_back(s.mpi_value->clone());
        in.root = s.mpi_root->clone();
        in.expr = s.hi->clone();
        append(std::move(in));
        break;
      }
      case StmtKind::MpiRecv: {
        Instruction in;
        in.op = Opcode::RecvMsg;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        in.var = s.name;
        in.root = s.mpi_root->clone();
        in.expr = s.hi->clone();
        append(std::move(in));
        break;
      }
      case StmtKind::MpiWait:
      case StmtKind::MpiTest: {
        Instruction in;
        in.op = s.kind == StmtKind::MpiWait ? Opcode::WaitReq : Opcode::TestReq;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        in.var = s.name;
        in.args.push_back(s.mpi_value->clone()); // the request
        append(std::move(in));
        break;
      }
      case StmtKind::MpiWaitall: {
        Instruction in;
        in.op = Opcode::WaitAllReq;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        for (const auto& a : s.args) in.args.push_back(a->clone());
        append(std::move(in));
        break;
      }
      case StmtKind::MpiCall: {
        Instruction in;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        if (s.is_mpi_init) {
          in.op = Opcode::MpiInit;
          in.thread_level = s.init_level;
          mod_.requested_thread_level = s.init_level;
        } else if (s.is_mpi_abort) {
          in.op = Opcode::MpiAbort;
          in.args.push_back(s.mpi_value->clone()); // the error code
        } else if (s.coll == ir::CollectiveKind::CommSplit) {
          in.op = Opcode::CollComm;
          in.collective = s.coll;
          in.var = s.name;
          in.args.push_back(s.mpi_value->clone()); // color
          in.args.push_back(s.mpi_root->clone());  // key
          if (s.mpi_comm) in.comm = s.mpi_comm->clone();
        } else {
          in.op = Opcode::CollComm;
          in.collective = s.coll;
          in.var = s.name;
          if (s.mpi_value) in.args.push_back(s.mpi_value->clone());
          if (s.mpi_root) in.root = s.mpi_root->clone();
          in.reduce_op = s.reduce_op;
          if (s.mpi_comm) in.comm = s.mpi_comm->clone();
        }
        append(std::move(in));
        break;
      }
      case StmtKind::Return: {
        Instruction in;
        in.op = Opcode::Return;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        if (s.value) in.expr = s.value->clone();
        append(std::move(in));
        fn_->add_edge(cur_, fn_->exit);
        // Statements after a return land in a fresh (unreachable) block.
        cur_ = fn_->add_block();
        break;
      }
      case StmtKind::If:
        lower_if(s);
        break;
      case StmtKind::While:
        lower_while(s);
        break;
      case StmtKind::For:
        lower_counted_loop(s, /*worksharing=*/false);
        break;
      case StmtKind::OmpParallel:
        lower_region(s, ir::OmpKind::Parallel, /*implicit_barrier=*/false);
        break;
      case StmtKind::OmpSingle:
        lower_region(s, ir::OmpKind::Single, !s.nowait);
        break;
      case StmtKind::OmpMaster:
        lower_region(s, ir::OmpKind::Master, false);
        break;
      case StmtKind::OmpCritical:
        lower_region(s, ir::OmpKind::Critical, false);
        break;
      case StmtKind::OmpBarrier: {
        Instruction in;
        in.op = Opcode::ExplicitBarrier;
        in.loc = s.loc;
        in.stmt_id = s.stmt_id;
        emit_boundary_block(std::move(in));
        break;
      }
      case StmtKind::OmpSections:
        lower_sections(s);
        break;
      case StmtKind::OmpSection:
        // Parser only nests these under sections; unreachable here.
        break;
      case StmtKind::OmpFor:
        lower_omp_for(s);
        break;
    }
  }

  void lower_if(const Stmt& s) {
    Instruction br;
    br.op = Opcode::CondBr;
    br.loc = s.loc;
    br.stmt_id = s.stmt_id;
    br.expr = s.value->clone();
    const BlockId cond_block = cur_;
    append(std::move(br));

    const BlockId then_block = fn_->add_block();
    fn_->add_edge(cond_block, then_block);
    cur_ = then_block;
    lower_body(s.body);
    const BlockId then_end = cur_;

    BlockId else_end = ir::kNoBlock;
    BlockId else_block = ir::kNoBlock;
    if (!s.else_body.empty()) {
      else_block = fn_->add_block();
      cur_ = else_block;
      lower_body(s.else_body);
      else_end = cur_;
    }

    const BlockId join = fn_->add_block();
    auto seal = [&](BlockId end) {
      cur_ = end;
      if (!fn_->block(end).has_terminator()) {
        Instruction j;
        j.op = Opcode::Br;
        j.loc = s.loc;
        j.stmt_id = s.stmt_id;
        append(std::move(j));
        fn_->add_edge(end, join);
      }
    };
    seal(then_end);
    if (else_block != ir::kNoBlock) {
      fn_->add_edge(cond_block, else_block);
      seal(else_end);
    } else {
      fn_->add_edge(cond_block, join);
    }
    cur_ = join;
  }

  void lower_while(const Stmt& s) {
    const BlockId header = branch_to_new_block(s.loc, s.stmt_id);
    Instruction br;
    br.op = Opcode::CondBr;
    br.loc = s.loc;
    br.stmt_id = s.stmt_id;
    br.expr = s.value->clone();
    append(std::move(br));

    const BlockId body = fn_->add_block();
    const BlockId exit = fn_->add_block();
    fn_->add_edge(header, body);
    fn_->add_edge(header, exit);

    cur_ = body;
    lower_body(s.body);
    if (!fn_->block(cur_).has_terminator()) {
      Instruction back;
      back.op = Opcode::Br;
      back.loc = s.loc;
      back.stmt_id = s.stmt_id;
      append(std::move(back));
      fn_->add_edge(cur_, header);
    }
    cur_ = exit;
  }

  /// for (i = lo to hi) { body }  ==>  i = lo; while (i < hi) { body; i = i + 1; }
  void lower_counted_loop(const Stmt& s, bool worksharing) {
    (void)worksharing;
    Instruction init;
    init.op = Opcode::Assign;
    init.loc = s.loc;
    init.stmt_id = s.stmt_id;
    init.var = s.name;
    init.expr = s.lo->clone();
    append(std::move(init));

    const BlockId header = branch_to_new_block(s.loc, s.stmt_id);
    Instruction br;
    br.op = Opcode::CondBr;
    br.loc = s.loc;
    br.stmt_id = s.stmt_id;
    br.expr = ir::Expr::binary(ir::BinaryOp::Lt, ir::Expr::var_ref(s.name, s.loc),
                               s.hi->clone(), s.loc);
    append(std::move(br));

    const BlockId body = fn_->add_block();
    const BlockId exit = fn_->add_block();
    fn_->add_edge(header, body);
    fn_->add_edge(header, exit);

    cur_ = body;
    lower_body(s.body);
    if (!fn_->block(cur_).has_terminator()) {
      Instruction step;
      step.op = Opcode::Assign;
      step.loc = s.loc;
      step.stmt_id = s.stmt_id;
      step.var = s.name;
      step.expr = ir::Expr::binary(ir::BinaryOp::Add, ir::Expr::var_ref(s.name, s.loc),
                                   ir::Expr::int_lit(1, s.loc), s.loc);
      append(std::move(step));
      Instruction back;
      back.op = Opcode::Br;
      back.loc = s.loc;
      back.stmt_id = s.stmt_id;
      append(std::move(back));
      fn_->add_edge(cur_, header);
    }
    cur_ = exit;
  }

  void lower_region(const Stmt& s, ir::OmpKind kind, bool implicit_barrier) {
    Instruction begin;
    begin.op = Opcode::OmpBegin;
    begin.loc = s.loc;
    begin.stmt_id = s.stmt_id;
    begin.omp = kind;
    begin.region_id = s.region_id;
    begin.nowait = s.nowait;
    if (s.num_threads) begin.num_threads = s.num_threads->clone();
    if (s.if_clause) begin.if_clause = s.if_clause->clone();
    emit_boundary_block(std::move(begin));

    lower_body(s.body);

    Instruction end;
    end.op = Opcode::OmpEnd;
    end.loc = s.loc;
    end.stmt_id = s.stmt_id;
    end.omp = kind;
    end.region_id = s.region_id;
    emit_boundary_block(std::move(end));

    if (implicit_barrier) emit_implicit_barrier(s);
  }

  void emit_implicit_barrier(const Stmt& s) {
    Instruction bar;
    bar.op = Opcode::ImplicitBarrier;
    bar.loc = s.loc;
    bar.stmt_id = s.stmt_id;
    bar.region_id = s.region_id;
    emit_boundary_block(std::move(bar));
  }

  void lower_sections(const Stmt& s) {
    Instruction begin;
    begin.op = Opcode::OmpBegin;
    begin.loc = s.loc;
    begin.stmt_id = s.stmt_id;
    begin.omp = ir::OmpKind::Sections;
    begin.region_id = s.region_id;
    begin.nowait = s.nowait;
    emit_boundary_block(std::move(begin));

    for (const auto& sec : s.body)
      lower_region(*sec, ir::OmpKind::Section, /*implicit_barrier=*/false);

    Instruction end;
    end.op = Opcode::OmpEnd;
    end.loc = s.loc;
    end.stmt_id = s.stmt_id;
    end.omp = ir::OmpKind::Sections;
    end.region_id = s.region_id;
    emit_boundary_block(std::move(end));

    if (!s.nowait) emit_implicit_barrier(s);
  }

  void lower_omp_for(const Stmt& s) {
    Instruction begin;
    begin.op = Opcode::OmpBegin;
    begin.loc = s.loc;
    begin.stmt_id = s.stmt_id;
    begin.omp = ir::OmpKind::For;
    begin.region_id = s.region_id;
    begin.nowait = s.nowait;
    emit_boundary_block(std::move(begin));

    lower_counted_loop(s, /*worksharing=*/true);

    Instruction end;
    end.op = Opcode::OmpEnd;
    end.loc = s.loc;
    end.stmt_id = s.stmt_id;
    end.omp = ir::OmpKind::For;
    end.region_id = s.region_id;
    emit_boundary_block(std::move(end));

    if (!s.nowait) emit_implicit_barrier(s);
  }

  ir::Module& mod_;
  [[maybe_unused]] DiagnosticEngine& diags_;
  Function* fn_ = nullptr;
  BlockId cur_ = ir::kNoBlock;
};

} // namespace

std::unique_ptr<ir::Module> Lowering::lower(const Program& program,
                                            DiagnosticEngine& diags) {
  auto mod = std::make_unique<ir::Module>();
  Lowerer lw(*mod, diags);
  for (const auto& f : program.funcs) lw.lower_function(f);
  return mod;
}

} // namespace parcoach::frontend
