// Frame-slot resolution for MiniHPC programs.
//
// Walks the scope structure the interpreter's Env chain would build (a scope
// per block / for-loop / OpenMP region / team thread) and assigns every
// variable declaration a dense per-function frame slot; every reference
// resolves to the slot of its innermost visible declaration. Slots are never
// reused across sibling scopes, so a slot identifies one lexical variable for
// the whole function — which is exactly what the bytecode engine needs to
// replace scope-chain hash lookups with direct frame indexing, and what the
// shared-slot indirection relies on for OpenMP shared-by-default semantics
// (a team thread rebinds a slot to private storage the moment the region
// body re-declares it; everything else keeps pointing at the forker's cell).
//
// The pass is a side table keyed by node address: the AST stays immutable and
// shareable, and hand-built programs that never went through sema still
// resolve (unresolved names are recorded as issues, which the bytecode
// compiler lowers to trap instructions with the same diagnostics the AST
// engine raises at execution time).
#pragma once

#include "frontend/ast.h"

#include <unordered_map>
#include <vector>

namespace parcoach::frontend {

/// A name that could not be resolved (a sema escape: the frontend rejects
/// these, but programs can be built programmatically).
struct SlotIssue {
  SourceLoc loc;
  std::string name;
  bool is_function = false; // undefined callee vs undefined variable
};

struct FunctionSlots {
  int32_t num_slots = 0;
  /// Slot of each parameter, in declaration order.
  std::vector<int32_t> param_slots;
};

/// The resolution result for a whole program.
struct SlotMap {
  std::unordered_map<const FuncDecl*, FunctionSlots> funcs;
  /// Target slot of VarDecl / Assign / For / OmpFor / result-producing
  /// call statements (CallStmt, MpiCall, MpiRecv, MpiWait, MpiTest).
  std::unordered_map<const Stmt*, int32_t> stmt_slots;
  /// Slot of every VarRef expression node.
  std::unordered_map<const ir::Expr*, int32_t> expr_slots;
  std::vector<SlotIssue> issues;

  /// -1 when the statement has no (resolved) target.
  [[nodiscard]] int32_t of(const Stmt& s) const {
    auto it = stmt_slots.find(&s);
    return it == stmt_slots.end() ? -1 : it->second;
  }
  /// -1 when the expression is not a resolved VarRef.
  [[nodiscard]] int32_t of(const ir::Expr& e) const {
    auto it = expr_slots.find(&e);
    return it == expr_slots.end() ? -1 : it->second;
  }
};

/// Resolves every function of `program`. Never fails: unresolved references
/// are recorded in `issues` and simply absent from the maps.
[[nodiscard]] SlotMap resolve_slots(const Program& program);

} // namespace parcoach::frontend
