// Tokens of the MiniHPC language.
//
// Only structural words are reserved; MPI call names, builtins, reduction
// operators and thread levels are ordinary identifiers resolved contextually
// by the parser, which keeps the keyword set small and the language easy to
// extend with new collectives.
#pragma once

#include "support/source_location.h"

#include <cstdint>
#include <string_view>

namespace parcoach::frontend {

enum class Tok : uint8_t {
  End,
  Ident,
  Int,
  // Punctuation.
  LParen, RParen, LBrace, RBrace, Comma, Semi,
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne, Not, AndAnd, OrOr,
  Assign,
  // Keywords.
  KwFunc, KwVar, KwIf, KwElse, KwWhile, KwFor, KwTo, KwReturn, KwPrint,
  KwOmp, KwParallel, KwSingle, KwMaster, KwCritical, KwBarrier,
  KwSections, KwSection, KwNowait, KwNumThreads,
};

struct Token {
  Tok kind = Tok::End;
  std::string_view text;
  int64_t int_val = 0;
  SourceLoc loc;

  /// True for identifiers and keywords (contextual names like "single" in
  /// mpi_init(single) arrive as keyword tokens but are used as names).
  [[nodiscard]] bool ident_like() const noexcept {
    return kind == Tok::Ident || kind >= Tok::KwFunc;
  }
};

[[nodiscard]] std::string_view to_string(Tok t) noexcept;

} // namespace parcoach::frontend
