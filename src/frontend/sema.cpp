#include "frontend/sema.h"

#include "support/str.h"

#include <unordered_map>
#include <unordered_set>

namespace parcoach::frontend {

namespace {

/// Lexical OpenMP context used for closely-nested legality checks.
enum class OmpCtx : uint8_t { None, Parallel, Single, Master, Critical, Section, For };

bool forbids_worksharing(OmpCtx c) {
  return c == OmpCtx::Single || c == OmpCtx::Master || c == OmpCtx::Critical ||
         c == OmpCtx::Section || c == OmpCtx::For;
}

class SemaImpl {
public:
  SemaImpl(const Program& p, DiagnosticEngine& diags) : p_(p), diags_(diags) {}

  SemaResult run() {
    collect_functions();
    for (const auto& f : p_.funcs) check_function(f);
    SemaResult r;
    r.ok = !diags_.has_errors();
    r.requested_thread_level = level_;
    r.has_mpi_init = saw_init_;
    r.has_mpi_finalize = saw_finalize_;
    return r;
  }

private:
  void error(SourceLoc loc, std::string msg) {
    diags_.report(Severity::Error, DiagKind::SemaError, loc, std::move(msg));
  }
  void warn(SourceLoc loc, std::string msg) {
    diags_.report(Severity::Warning, DiagKind::SemaError, loc, std::move(msg));
  }

  void collect_functions() {
    for (const auto& f : p_.funcs) {
      if (!arity_.emplace(f.name, f.params.size()).second)
        error(f.loc, str::cat("duplicate function '", f.name, "'"));
      std::unordered_set<std::string> seen;
      for (const auto& prm : f.params)
        if (!seen.insert(prm).second)
          error(f.loc, str::cat("duplicate parameter '", prm, "' in '", f.name, "'"));
    }
  }

  // -- Scopes ---------------------------------------------------------------
  // Each scope maps a variable name to the handle kind it currently holds.
  // Requests (results of mpi_i* calls) may only flow into mpi_wait/mpi_test/
  // mpi_waitall; communicator handles (results of mpi_comm_split/dup) may
  // only flow into a collective's trailing comm argument or into
  // mpi_comm_dup/mpi_comm_free. Neither is a plain value.
  enum class VarKind : uint8_t { Plain, Request, CommHandle };

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  void declare(SourceLoc loc, const std::string& name,
               VarKind kind = VarKind::Plain) {
    if (scopes_.back().count(name)) {
      error(loc, str::cat("redeclaration of '", name, "' in the same scope"));
      return;
    }
    scopes_.back().emplace(name, kind);
  }
  VarKind* find_var(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto vit = it->find(name);
      if (vit != it->end()) return &vit->second;
    }
    return nullptr;
  }
  bool is_declared(const std::string& name) {
    return find_var(name) != nullptr;
  }

  void check_expr(const ir::Expr& e) {
    e.walk([&](const ir::Expr& n) {
      if (n.kind != ir::Expr::Kind::VarRef) return;
      VarKind* kind = find_var(n.var);
      if (!kind)
        error(n.loc, str::cat("use of undeclared variable '", n.var, "'"));
      else if (*kind == VarKind::Request)
        error(n.loc, str::cat("request variable '", n.var, "' used as a "
                              "plain value; only mpi_wait/mpi_test/"
                              "mpi_waitall accept requests"));
      else if (*kind == VarKind::CommHandle)
        error(n.loc, str::cat("communicator variable '", n.var, "' used as a "
                              "plain value; pass it as a collective's comm "
                              "argument or to a communicator operation "
                              "(dup/free/revoke/shrink/agree)"));
    });
  }

  /// Validates an mpi_wait/mpi_test/mpi_waitall argument: must be a plain
  /// reference to a request-typed variable.
  void check_request_arg(const ir::Expr& e, std::string_view what) {
    if (e.kind != ir::Expr::Kind::VarRef) {
      error(e.loc, str::cat(what, " argument must be a request variable "
                            "(the result of an mpi_i* call)"));
      return;
    }
    VarKind* kind = find_var(e.var);
    if (!kind) {
      error(e.loc, str::cat("use of undeclared variable '", e.var, "'"));
    } else if (*kind != VarKind::Request) {
      error(e.loc, str::cat("'", e.var, "' is not a request variable; ", what,
                            " needs the result of an mpi_i* call"));
    }
  }

  /// Validates a communicator argument: must be a plain reference to a
  /// comm-handle variable (the result of mpi_comm_split / mpi_comm_dup /
  /// mpi_comm_shrink).
  void check_comm_arg(const ir::Expr& e, std::string_view what) {
    if (e.kind != ir::Expr::Kind::VarRef) {
      error(e.loc, str::cat(what, " must be a communicator variable (the "
                            "result of mpi_comm_split, mpi_comm_dup or "
                            "mpi_comm_shrink)"));
      return;
    }
    VarKind* kind = find_var(e.var);
    if (!kind) {
      error(e.loc, str::cat("use of undeclared variable '", e.var, "'"));
    } else if (*kind != VarKind::CommHandle) {
      error(e.loc, str::cat("'", e.var, "' is not a communicator variable; ",
                            what, " needs the result of mpi_comm_split, "
                            "mpi_comm_dup or mpi_comm_shrink"));
    }
  }

  // -- Statements -------------------------------------------------------------
  void check_function(const FuncDecl& f) {
    scopes_.clear();
    push_scope();
    for (const auto& prm : f.params)
      scopes_.back().emplace(prm, VarKind::Plain);
    check_body(f.body, OmpCtx::None, /*omp_depth=*/0);
    pop_scope();
  }

  void check_body(const std::vector<StmtPtr>& body, OmpCtx ctx, int omp_depth) {
    push_scope();
    for (const auto& s : body) check_stmt(*s, ctx, omp_depth);
    pop_scope();
  }

  void check_stmt(const Stmt& s, OmpCtx ctx, int omp_depth) {
    switch (s.kind) {
      case StmtKind::VarDecl:
        check_expr(*s.value);
        declare(s.loc, s.name);
        break;
      case StmtKind::Assign:
        check_expr(*s.value);
        if (VarKind* kind = find_var(s.name)) {
          *kind = VarKind::Plain; // a plain assignment overwrites any handle
        } else {
          error(s.loc, str::cat("assignment to undeclared variable '", s.name, "'"));
        }
        break;
      case StmtKind::If: {
        check_expr(*s.value);
        // Branches update handle kinds independently and join conservatively:
        // if either path can leave a request (or comm handle) in a variable,
        // later uses must treat it as one (like the runtime checks).
        const auto before = scopes_;
        check_body(s.body, ctx, omp_depth);
        const auto after_then = scopes_;
        scopes_ = before;
        check_body(s.else_body, ctx, omp_depth);
        for (size_t i = 0; i < scopes_.size() && i < after_then.size(); ++i) {
          for (auto& [name, kind] : scopes_[i]) {
            auto it = after_then[i].find(name);
            if (it != after_then[i].end() && kind == VarKind::Plain)
              kind = it->second;
          }
        }
        break;
      }
      case StmtKind::While:
        check_expr(*s.value);
        check_body(s.body, ctx, omp_depth);
        break;
      case StmtKind::For: {
        check_expr(*s.lo);
        check_expr(*s.hi);
        push_scope();
        declare(s.loc, s.name);
        for (const auto& c : s.body) check_stmt(*c, ctx, omp_depth);
        pop_scope();
        break;
      }
      case StmtKind::Return:
        if (s.value) check_expr(*s.value);
        if (omp_depth > 0)
          error(s.loc, "return may not branch out of an OpenMP structured block");
        break;
      case StmtKind::Print:
        for (const auto& a : s.args) check_expr(*a);
        break;
      case StmtKind::CallStmt: {
        for (const auto& a : s.args) check_expr(*a);
        auto it = arity_.find(s.callee);
        if (it == arity_.end()) {
          error(s.loc, str::cat("call to undefined function '", s.callee, "'"));
        } else if (it->second != s.args.size()) {
          error(s.loc, str::cat("'", s.callee, "' expects ", it->second,
                                " arguments, got ", s.args.size()));
        }
        handle_target(s);
        break;
      }
      case StmtKind::MpiSend:
        check_expr(*s.mpi_value);
        check_expr(*s.mpi_root);
        check_expr(*s.hi);
        break;
      case StmtKind::MpiRecv:
        check_expr(*s.mpi_root);
        check_expr(*s.hi);
        handle_target(s);
        break;
      case StmtKind::MpiCall: {
        if (s.is_mpi_init) {
          if (saw_init_) warn(s.loc, "mpi_init called more than once");
          saw_init_ = true;
          level_ = s.init_level;
          handle_target(s);
          break;
        }
        if (s.is_mpi_abort) {
          // Not a collective: no matching, no CC class, no target. The code
          // expression is the only thing to validate.
          check_expr(*s.mpi_value);
          break;
        }
        if (s.coll == ir::CollectiveKind::Finalize) saw_finalize_ = true;
        if (s.mpi_value) check_expr(*s.mpi_value);
        if (s.mpi_root) check_expr(*s.mpi_root);
        if (s.mpi_comm) {
          std::string_view what = "the collective's comm argument";
          if (ir::is_comm_op(s.coll)) {
            switch (s.coll) {
              case ir::CollectiveKind::CommFree: what = "mpi_comm_free"; break;
              case ir::CollectiveKind::CommRevoke:
                what = "mpi_comm_revoke";
                break;
              case ir::CollectiveKind::CommShrink:
                what = "mpi_comm_shrink";
                break;
              case ir::CollectiveKind::CommAgree:
                what = "mpi_comm_agree";
                break;
              case ir::CollectiveKind::CommSetErrhandler:
                what = "mpi_comm_set_errhandler";
                break;
              default: what = "the parent communicator"; break;
            }
          }
          check_comm_arg(*s.mpi_comm, what);
        }
        VarKind result = VarKind::Plain;
        if (ir::is_nonblocking(s.coll)) result = VarKind::Request;
        if (ir::is_comm_ctor(s.coll)) result = VarKind::CommHandle;
        handle_target(s, result);
        break;
      }
      case StmtKind::MpiWait:
        check_request_arg(*s.mpi_value, "mpi_wait");
        handle_target(s);
        break;
      case StmtKind::MpiTest:
        check_request_arg(*s.mpi_value, "mpi_test");
        handle_target(s);
        break;
      case StmtKind::MpiWaitall:
        for (const auto& a : s.args) check_request_arg(*a, "mpi_waitall");
        break;
      case StmtKind::OmpParallel:
        if (s.num_threads) check_expr(*s.num_threads);
        if (s.if_clause) check_expr(*s.if_clause);
        // parallel resets the closely-nested context: constructs inside bind
        // to the new team.
        check_body(s.body, OmpCtx::Parallel, omp_depth + 1);
        break;
      case StmtKind::OmpSingle:
        check_worksharing_nesting(s, ctx, "single");
        check_body(s.body, OmpCtx::Single, omp_depth + 1);
        break;
      case StmtKind::OmpMaster:
        // master is not a worksharing construct; legal anywhere except that
        // we still flag it inside worksharing for symmetry with real
        // compilers' warnings? No: keep silent, per spec it is legal.
        check_body(s.body, OmpCtx::Master, omp_depth + 1);
        break;
      case StmtKind::OmpCritical:
        if (ctx == OmpCtx::Critical)
          error(s.loc, "critical region may not be closely nested inside a "
                       "critical region (self-deadlock)");
        check_body(s.body, OmpCtx::Critical, omp_depth + 1);
        break;
      case StmtKind::OmpBarrier:
        if (ctx != OmpCtx::None && ctx != OmpCtx::Parallel)
          error(s.loc, "barrier may not be closely nested inside a "
                       "worksharing, single, master or critical region");
        break;
      case StmtKind::OmpSections:
        check_worksharing_nesting(s, ctx, "sections");
        for (const auto& sec : s.body) {
          // Parser guarantees children are OmpSection.
          check_body(sec->body, OmpCtx::Section, omp_depth + 2);
        }
        break;
      case StmtKind::OmpSection:
        error(s.loc, "omp section outside of omp sections");
        break;
      case StmtKind::OmpFor: {
        check_worksharing_nesting(s, ctx, "for");
        check_expr(*s.lo);
        check_expr(*s.hi);
        push_scope();
        declare(s.loc, s.name);
        for (const auto& c : s.body) check_stmt(*c, OmpCtx::For, omp_depth + 1);
        pop_scope();
        break;
      }
    }
  }

  void check_worksharing_nesting(const Stmt& s, OmpCtx ctx, std::string_view what) {
    if (forbids_worksharing(ctx))
      error(s.loc, str::cat("worksharing construct '", what,
                            "' may not be closely nested inside a "
                            "worksharing, single, master, critical or "
                            "section region"));
  }

  void handle_target(const Stmt& s, VarKind kind = VarKind::Plain) {
    if (s.name.empty()) return;
    if (s.declares_target) {
      declare(s.loc, s.name, kind);
    } else if (VarKind* k = find_var(s.name)) {
      *k = kind;
    } else {
      error(s.loc, str::cat("assignment to undeclared variable '", s.name, "'"));
    }
  }

  const Program& p_;
  DiagnosticEngine& diags_;
  std::unordered_map<std::string, size_t> arity_;
  /// Scope chain: variable name -> the handle kind it currently holds.
  std::vector<std::unordered_map<std::string, VarKind>> scopes_;
  std::optional<ir::ThreadLevel> level_;
  bool saw_init_ = false;
  bool saw_finalize_ = false;
};

} // namespace

SemaResult Sema::analyze(const Program& program, DiagnosticEngine& diags) {
  return SemaImpl(program, diags).run();
}

} // namespace parcoach::frontend
