// Hand-written lexer for MiniHPC. Produces the whole token stream up front
// (programs are small enough that a token vector is simpler and faster than
// a pull lexer, and it lets the parser backtrack trivially).
#pragma once

#include "frontend/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

#include <vector>

namespace parcoach::frontend {

class Lexer {
public:
  /// Lexes buffer `file_id` of `sm`. Lex errors are reported to `diags`;
  /// the returned stream always ends with a Tok::End token.
  static std::vector<Token> lex(const SourceManager& sm, int32_t file_id,
                                DiagnosticEngine& diags);
};

} // namespace parcoach::frontend
