#include "frontend/lexer.h"

#include "support/str.h"

#include <cctype>
#include <unordered_map>

namespace parcoach::frontend {

namespace {

const std::unordered_map<std::string_view, Tok>& keyword_table() {
  static const std::unordered_map<std::string_view, Tok> table = {
      {"func", Tok::KwFunc},        {"var", Tok::KwVar},
      {"if", Tok::KwIf},            {"else", Tok::KwElse},
      {"while", Tok::KwWhile},      {"for", Tok::KwFor},
      {"to", Tok::KwTo},            {"return", Tok::KwReturn},
      {"print", Tok::KwPrint},      {"omp", Tok::KwOmp},
      {"parallel", Tok::KwParallel},{"single", Tok::KwSingle},
      {"master", Tok::KwMaster},    {"critical", Tok::KwCritical},
      {"barrier", Tok::KwBarrier},  {"sections", Tok::KwSections},
      {"section", Tok::KwSection},  {"nowait", Tok::KwNowait},
      {"num_threads", Tok::KwNumThreads},
  };
  return table;
}

} // namespace

std::string_view to_string(Tok t) noexcept {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::Comma: return ",";
    case Tok::Semi: return ";";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Lt: return "<";
    case Tok::Le: return "<=";
    case Tok::Gt: return ">";
    case Tok::Ge: return ">=";
    case Tok::EqEq: return "==";
    case Tok::Ne: return "!=";
    case Tok::Not: return "!";
    case Tok::AndAnd: return "&&";
    case Tok::OrOr: return "||";
    case Tok::Assign: return "=";
    case Tok::KwFunc: return "func";
    case Tok::KwVar: return "var";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwWhile: return "while";
    case Tok::KwFor: return "for";
    case Tok::KwTo: return "to";
    case Tok::KwReturn: return "return";
    case Tok::KwPrint: return "print";
    case Tok::KwOmp: return "omp";
    case Tok::KwParallel: return "parallel";
    case Tok::KwSingle: return "single";
    case Tok::KwMaster: return "master";
    case Tok::KwCritical: return "critical";
    case Tok::KwBarrier: return "barrier";
    case Tok::KwSections: return "sections";
    case Tok::KwSection: return "section";
    case Tok::KwNowait: return "nowait";
    case Tok::KwNumThreads: return "num_threads";
  }
  return "?";
}

std::vector<Token> Lexer::lex(const SourceManager& sm, int32_t file_id,
                              DiagnosticEngine& diags) {
  const std::string_view src = sm.buffer_text(file_id);
  std::vector<Token> out;
  int32_t line = 1, col = 1;
  size_t i = 0;

  auto loc_here = [&]() { return SourceLoc{file_id, line, col}; };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto push = [&](Tok kind, SourceLoc loc, std::string_view text) {
    out.push_back(Token{kind, text, 0, loc});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    const SourceLoc loc = loc_here();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i])))
        advance(1);
      Token t{Tok::Int, src.substr(start, i - start), 0, loc};
      t.int_val = 0;
      for (char d : t.text) t.int_val = t.int_val * 10 + (d - '0');
      out.push_back(t);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(src[i])) ||
                                src[i] == '_'))
        advance(1);
      const std::string_view text = src.substr(start, i - start);
      const auto& kw = keyword_table();
      auto it = kw.find(text);
      push(it != kw.end() ? it->second : Tok::Ident, loc, text);
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case '(': push(Tok::LParen, loc, "("); advance(1); break;
      case ')': push(Tok::RParen, loc, ")"); advance(1); break;
      case '{': push(Tok::LBrace, loc, "{"); advance(1); break;
      case '}': push(Tok::RBrace, loc, "}"); advance(1); break;
      case ',': push(Tok::Comma, loc, ","); advance(1); break;
      case ';': push(Tok::Semi, loc, ";"); advance(1); break;
      case '+': push(Tok::Plus, loc, "+"); advance(1); break;
      case '-': push(Tok::Minus, loc, "-"); advance(1); break;
      case '*': push(Tok::Star, loc, "*"); advance(1); break;
      case '/': push(Tok::Slash, loc, "/"); advance(1); break;
      case '%': push(Tok::Percent, loc, "%"); advance(1); break;
      case '<':
        if (two('=')) { push(Tok::Le, loc, "<="); advance(2); }
        else { push(Tok::Lt, loc, "<"); advance(1); }
        break;
      case '>':
        if (two('=')) { push(Tok::Ge, loc, ">="); advance(2); }
        else { push(Tok::Gt, loc, ">"); advance(1); }
        break;
      case '=':
        if (two('=')) { push(Tok::EqEq, loc, "=="); advance(2); }
        else { push(Tok::Assign, loc, "="); advance(1); }
        break;
      case '!':
        if (two('=')) { push(Tok::Ne, loc, "!="); advance(2); }
        else { push(Tok::Not, loc, "!"); advance(1); }
        break;
      case '&':
        if (two('&')) { push(Tok::AndAnd, loc, "&&"); advance(2); }
        else {
          diags.report(Severity::Error, DiagKind::LexError, loc, "stray '&'");
          advance(1);
        }
        break;
      case '|':
        if (two('|')) { push(Tok::OrOr, loc, "||"); advance(2); }
        else {
          diags.report(Severity::Error, DiagKind::LexError, loc, "stray '|'");
          advance(1);
        }
        break;
      default:
        diags.report(Severity::Error, DiagKind::LexError, loc,
                     str::cat("unexpected character '", c, "'"));
        advance(1);
        break;
    }
  }
  out.push_back(Token{Tok::End, "", 0, loc_here()});
  return out;
}

} // namespace parcoach::frontend
