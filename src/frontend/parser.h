// Recursive-descent parser for MiniHPC.
//
// Grammar (EBNF, `//` comments, integers only):
//   program    := func*
//   func       := 'func' ID '(' [ID {',' ID}] ')' block
//   block      := '{' stmt* '}'
//   stmt       := 'var' ID '=' expr ';'
//              | ID '=' (expr | call) ';'
//              | call ';'
//              | 'if' '(' expr ')' block ['else' (block | if-stmt)]
//              | 'while' '(' expr ')' block
//              | 'for' '(' ID '=' expr 'to' expr ')' block
//              | 'return' [expr] ';'
//              | 'print' '(' expr {',' expr} ')' ';'
//              | omp
//   omp        := 'omp' 'parallel' ['num_threads' '(' expr ')'] ['if' '(' expr ')'] block
//              | 'omp' 'single' ['nowait'] block
//              | 'omp' 'master' block
//              | 'omp' 'critical' block
//              | 'omp' 'barrier' ';'
//              | 'omp' 'sections' ['nowait'] '{' {'omp' 'section' block} '}'
//              | 'omp' 'for' ['nowait'] '(' ID '=' expr 'to' expr ')' block
//   call       := NAME '(' [arg {',' arg}] ')'      // user function or mpi_*
//   expr       := ||, &&, comparisons, + - , * / %, unary - !, primaries
//   primary    := INT | ID | builtin '(' ')' | '(' expr ')'
//
// MPI spellings: mpi_init(level) mpi_finalize() mpi_barrier()
//   mpi_bcast(v, root) mpi_reduce(v, op, root) mpi_allreduce(v, op)
//   mpi_gather(v, root) mpi_allgather(v) mpi_scatter(v, root)
//   mpi_alltoall(v) mpi_scan(v, op) mpi_reduce_scatter(v, op)
#pragma once

#include "frontend/ast.h"
#include "frontend/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

#include <vector>

namespace parcoach::frontend {

class Parser {
public:
  /// Parses one buffer into a Program. On syntax errors, reports diagnostics
  /// and returns what was parsed so far (callers must check diags).
  static Program parse(const SourceManager& sm, int32_t file_id,
                       DiagnosticEngine& diags);

  /// Convenience: registers `source` with `sm` under `name`, then parses.
  static Program parse_source(SourceManager& sm, std::string name,
                              std::string source, DiagnosticEngine& diags);
};

} // namespace parcoach::frontend
