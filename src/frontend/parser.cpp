#include "frontend/parser.h"

#include "frontend/lexer.h"
#include "support/str.h"

namespace parcoach::frontend {

namespace {

using ir::Expr;
using ir::ExprPtr;

class ParserImpl {
public:
  ParserImpl(std::vector<Token> toks, DiagnosticEngine& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  Program run() {
    Program p;
    while (!at(Tok::End) && !fatal_) {
      if (at(Tok::KwFunc)) {
        p.funcs.push_back(parse_func());
      } else {
        error(cur().loc, str::cat("expected 'func', got '", cur().text, "'"));
        sync_to_func();
      }
    }
    p.num_stmts = next_stmt_id_;
    p.num_regions = next_region_id_;
    return p;
  }

private:
  // -- Token helpers ---------------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token eat() { return toks_[pos_ == toks_.size() - 1 ? pos_ : pos_++]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    eat();
    return true;
  }
  Token expect(Tok k, std::string_view what) {
    if (at(k)) return eat();
    error(cur().loc, str::cat("expected ", to_string(k), " (", what, "), got '",
                              cur().text, "'"));
    fatal_ = true;
    return cur();
  }
  void error(SourceLoc loc, std::string msg) {
    diags_.report(Severity::Error, DiagKind::ParseError, loc, std::move(msg));
  }
  void sync_to_func() {
    while (!at(Tok::End) && !at(Tok::KwFunc)) eat();
  }

  StmtPtr make_stmt(StmtKind kind, SourceLoc loc) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->loc = loc;
    s->stmt_id = next_stmt_id_++;
    return s;
  }

  // -- Declarations ----------------------------------------------------------
  FuncDecl parse_func() {
    FuncDecl f;
    f.loc = cur().loc;
    expect(Tok::KwFunc, "function declaration");
    const Token name = eat();
    if (!name.ident_like())
      error(name.loc, "expected function name");
    f.name = std::string(name.text);
    expect(Tok::LParen, "parameter list");
    if (!at(Tok::RParen)) {
      do {
        const Token p = eat();
        if (!p.ident_like()) {
          error(p.loc, "expected parameter name");
          break;
        }
        f.params.emplace_back(p.text);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "parameter list");
    f.body = parse_block();
    return f;
  }

  std::vector<StmtPtr> parse_block() {
    std::vector<StmtPtr> body;
    expect(Tok::LBrace, "block");
    while (!at(Tok::RBrace) && !at(Tok::End) && !fatal_) {
      if (auto s = parse_stmt()) body.push_back(std::move(s));
    }
    expect(Tok::RBrace, "block");
    return body;
  }

  // -- Statements ------------------------------------------------------------
  StmtPtr parse_stmt() {
    switch (cur().kind) {
      case Tok::KwVar: return parse_var_decl();
      case Tok::KwIf: return parse_if();
      case Tok::KwWhile: return parse_while();
      case Tok::KwFor: return parse_for();
      case Tok::KwReturn: return parse_return();
      case Tok::KwPrint: return parse_print();
      case Tok::KwOmp: return parse_omp();
      case Tok::Ident: return parse_assign_or_call();
      default:
        error(cur().loc, str::cat("unexpected token '", cur().text, "'"));
        fatal_ = true;
        return nullptr;
    }
  }

  StmtPtr parse_var_decl() {
    auto s = make_stmt(StmtKind::VarDecl, cur().loc);
    expect(Tok::KwVar, "variable declaration");
    const Token name = eat();
    if (!name.ident_like()) error(name.loc, "expected variable name");
    s->name = std::string(name.text);
    expect(Tok::Assign, "initializer");
    // `var x = f(...)` / `var x = mpi_xxx(...)` become call statements with
    // a declared target; sema records the declaration.
    if (is_call_start()) {
      StmtPtr call = parse_call_stmt(std::string(name.text), /*declares=*/true);
      call->loc = s->loc;
      expect(Tok::Semi, "statement end");
      return call;
    }
    s->value = parse_expr();
    expect(Tok::Semi, "statement end");
    return s;
  }

  bool is_call_start() const {
    return cur().ident_like() && peek().kind == Tok::LParen &&
           !is_builtin_name(cur().text);
  }

  static bool is_builtin_name(std::string_view name) {
    return name == "rank" || name == "size" || name == "omp_thread_num" ||
           name == "omp_num_threads";
  }

  StmtPtr parse_assign_or_call() {
    const Token first = cur();
    if (peek().kind == Tok::LParen) {
      // Bare call statement.
      StmtPtr s = parse_call_stmt("", false);
      expect(Tok::Semi, "statement end");
      return s;
    }
    // Assignment.
    eat(); // name
    auto s = make_stmt(StmtKind::Assign, first.loc);
    s->name = std::string(first.text);
    expect(Tok::Assign, "assignment");
    if (is_call_start()) {
      StmtPtr call = parse_call_stmt(std::string(first.text), /*declares=*/false);
      call->loc = first.loc;
      expect(Tok::Semi, "statement end");
      return call;
    }
    s->value = parse_expr();
    expect(Tok::Semi, "statement end");
    return s;
  }

  /// Parses NAME '(' args ')' where NAME may be an mpi_* spelling or a user
  /// function. `target` is the assignment destination ("" for none).
  StmtPtr parse_call_stmt(std::string target, bool declares) {
    const Token name = eat();
    const std::string callee(name.text);
    if (callee == "mpi_init") return parse_mpi_init(name.loc, target, declares);
    if (callee == "mpi_abort") return parse_mpi_abort(name.loc, target);
    if (callee == "mpi_send" || callee == "mpi_recv")
      return parse_mpi_p2p(callee == "mpi_send", name.loc, std::move(target),
                           declares);
    if (callee == "mpi_wait" || callee == "mpi_test")
      return parse_mpi_wait(callee == "mpi_test", name.loc, std::move(target),
                            declares);
    if (callee == "mpi_waitall")
      return parse_mpi_waitall(name.loc, std::move(target));
    if (auto kind = ir::collective_from_name(callee)) {
      if (ir::is_comm_op(*kind))
        return parse_mpi_comm_op(*kind, name.loc, std::move(target), declares);
      return parse_mpi_collective(*kind, name.loc, std::move(target), declares);
    }

    auto s = make_stmt(StmtKind::CallStmt, name.loc);
    s->callee = callee;
    s->name = std::move(target);
    s->is_mpi_init = false;
    if (declares) s->declares_target = true;
    expect(Tok::LParen, "call");
    if (!at(Tok::RParen)) {
      do s->args.push_back(parse_expr());
      while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "call");
    return s;
  }

  /// mpi_send(value, dest, tag);   NAME = mpi_recv(source, tag);
  StmtPtr parse_mpi_p2p(bool is_send, SourceLoc loc, std::string target,
                        bool declares) {
    auto s = make_stmt(is_send ? StmtKind::MpiSend : StmtKind::MpiRecv, loc);
    if (is_send && !target.empty())
      error(loc, "mpi_send does not produce a value");
    if (!is_send && target.empty())
      error(loc, "mpi_recv must be assigned to a variable");
    s->name = std::move(target);
    if (declares) s->declares_target = true;
    expect(Tok::LParen, "point-to-point call");
    if (is_send) {
      s->mpi_value = parse_expr();
      expect(Tok::Comma, "destination rank");
    }
    s->mpi_root = parse_expr(); // dest (send) / source (recv)
    expect(Tok::Comma, "message tag");
    s->hi = parse_expr(); // tag
    expect(Tok::RParen, "point-to-point call");
    return s;
  }

  /// [NAME =] mpi_wait(request);   NAME = mpi_test(request);
  StmtPtr parse_mpi_wait(bool is_test, SourceLoc loc, std::string target,
                         bool declares) {
    auto s = make_stmt(is_test ? StmtKind::MpiTest : StmtKind::MpiWait, loc);
    if (is_test && target.empty())
      error(loc, "mpi_test must be assigned to a variable");
    s->name = std::move(target);
    if (declares) s->declares_target = true;
    expect(Tok::LParen, is_test ? "mpi_test" : "mpi_wait");
    s->mpi_value = parse_expr(); // the request
    expect(Tok::RParen, is_test ? "mpi_test" : "mpi_wait");
    return s;
  }

  /// mpi_waitall(r1, r2, ...);
  StmtPtr parse_mpi_waitall(SourceLoc loc, const std::string& target) {
    if (!target.empty())
      error(loc, "mpi_waitall does not produce a value");
    auto s = make_stmt(StmtKind::MpiWaitall, loc);
    expect(Tok::LParen, "mpi_waitall");
    do s->args.push_back(parse_expr());
    while (accept(Tok::Comma));
    expect(Tok::RParen, "mpi_waitall");
    return s;
  }

  StmtPtr parse_mpi_init(SourceLoc loc, const std::string& target, bool declares) {
    if (!target.empty())
      error(loc, "mpi_init does not produce a value");
    (void)declares;
    auto s = make_stmt(StmtKind::MpiCall, loc);
    s->is_mpi_init = true;
    expect(Tok::LParen, "mpi_init");
    const Token lv = eat();
    if (auto level = ir::thread_level_from_name(lv.text)) {
      s->init_level = *level;
    } else {
      error(lv.loc, str::cat("unknown thread level '", lv.text,
                             "' (want single|funneled|serialized|multiple)"));
    }
    expect(Tok::RParen, "mpi_init");
    return s;
  }

  /// mpi_abort(code); — kills the whole world with the given exit code.
  StmtPtr parse_mpi_abort(SourceLoc loc, const std::string& target) {
    if (!target.empty())
      error(loc, "mpi_abort does not produce a value");
    auto s = make_stmt(StmtKind::MpiCall, loc);
    s->is_mpi_abort = true;
    expect(Tok::LParen, "mpi_abort");
    s->mpi_value = parse_expr(); // the error code
    expect(Tok::RParen, "mpi_abort");
    return s;
  }

  StmtPtr parse_mpi_collective(ir::CollectiveKind kind, SourceLoc loc,
                               std::string target, bool declares) {
    auto s = make_stmt(StmtKind::MpiCall, loc);
    s->coll = kind;
    s->name = std::move(target);
    if (declares) s->declares_target = true;
    if (ir::is_nonblocking(kind) && s->name.empty())
      error(loc, str::cat(ir::to_string(kind), " produces a request that must "
                          "be assigned (it would leak immediately)"));
    expect(Tok::LParen, "collective call");
    if (ir::takes_payload(kind)) {
      s->mpi_value = parse_expr();
      if (ir::has_reduce_op(kind)) {
        expect(Tok::Comma, "reduction operator");
        const Token op = eat();
        if (auto r = ir::reduce_op_from_name(op.text))
          s->reduce_op = *r;
        else
          error(op.loc, str::cat("unknown reduction op '", op.text, "'"));
      }
      if (ir::has_root(kind)) {
        expect(Tok::Comma, "root rank");
        s->mpi_root = parse_expr();
      }
      // Optional trailing communicator argument (default: world).
      if (accept(Tok::Comma)) s->mpi_comm = parse_expr();
    } else if (!s->name.empty() && !ir::produces_value(kind)) {
      error(loc, str::cat(ir::to_string(kind), " does not produce a value"));
    }
    // Payload-less collectives take the communicator as their only argument
    // (`mpi_barrier(c)`); mpi_finalize stays world-only by definition.
    if (!ir::takes_payload(kind) && !at(Tok::RParen)) {
      if (kind == ir::CollectiveKind::Finalize)
        error(loc, "mpi_finalize takes no arguments");
      s->mpi_comm = parse_expr();
    }
    expect(Tok::RParen, "collective call");
    return s;
  }

  /// var C = mpi_comm_split(color, key);  var D = mpi_comm_dup([comm]);
  /// mpi_comm_free(comm);
  /// ULFM recovery forms:
  ///   mpi_comm_set_errhandler(mode[, comm]);   // 0 = abort, 1 = return
  ///   mpi_comm_revoke(comm);
  ///   var S = mpi_comm_shrink(comm);           // survivor communicator
  ///   var F = mpi_comm_agree(comm, flag);      // fault-tolerant AND
  StmtPtr parse_mpi_comm_op(ir::CollectiveKind kind, SourceLoc loc,
                            std::string target, bool declares) {
    auto s = make_stmt(StmtKind::MpiCall, loc);
    s->coll = kind;
    s->name = std::move(target);
    if (declares) s->declares_target = true;
    if (ir::is_comm_ctor(kind) && s->name.empty())
      error(loc, str::cat(ir::to_string(kind), " produces a communicator that "
                          "must be assigned"));
    if (kind == ir::CollectiveKind::CommAgree && s->name.empty())
      error(loc, "mpi_comm_agree produces the agreed flag, which must be "
                 "assigned");
    if (!ir::produces_value(kind) && !s->name.empty())
      error(loc, str::cat(ir::to_string(kind), " does not produce a value"));
    expect(Tok::LParen, "communicator call");
    switch (kind) {
      case ir::CollectiveKind::CommSplit:
        s->mpi_value = parse_expr(); // color
        expect(Tok::Comma, "split key");
        s->mpi_root = parse_expr(); // key
        if (accept(Tok::Comma)) s->mpi_comm = parse_expr(); // parent comm
        break;
      case ir::CollectiveKind::CommDup:
        if (!at(Tok::RParen)) s->mpi_comm = parse_expr(); // default: world
        break;
      case ir::CollectiveKind::CommSetErrhandler:
        s->mpi_value = parse_expr(); // mode: 0 = abort, 1 = return
        if (accept(Tok::Comma)) s->mpi_comm = parse_expr(); // default: world
        break;
      case ir::CollectiveKind::CommShrink:
        // The (possibly revoked) parent; default: world.
        if (!at(Tok::RParen)) s->mpi_comm = parse_expr();
        break;
      case ir::CollectiveKind::CommAgree: {
        // mpi_comm_agree(flag) on world, or mpi_comm_agree(comm, flag).
        ExprPtr first = parse_expr();
        if (accept(Tok::Comma)) {
          s->mpi_comm = std::move(first);
          s->mpi_value = parse_expr();
        } else {
          s->mpi_value = std::move(first);
        }
        break;
      }
      case ir::CollectiveKind::CommRevoke:
        if (!at(Tok::RParen)) s->mpi_comm = parse_expr(); // default: world
        break;
      default: // CommFree: just the handle (world cannot be freed)
        s->mpi_comm = parse_expr();
        break;
    }
    expect(Tok::RParen, "communicator call");
    return s;
  }

  StmtPtr parse_if() {
    auto s = make_stmt(StmtKind::If, cur().loc);
    expect(Tok::KwIf, "if");
    expect(Tok::LParen, "condition");
    s->value = parse_expr();
    expect(Tok::RParen, "condition");
    s->body = parse_block();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        s->else_body.push_back(parse_if());
      } else {
        s->else_body = parse_block();
      }
    }
    return s;
  }

  StmtPtr parse_while() {
    auto s = make_stmt(StmtKind::While, cur().loc);
    expect(Tok::KwWhile, "while");
    expect(Tok::LParen, "condition");
    s->value = parse_expr();
    expect(Tok::RParen, "condition");
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_for() {
    auto s = make_stmt(StmtKind::For, cur().loc);
    expect(Tok::KwFor, "for");
    expect(Tok::LParen, "loop header");
    const Token name = eat();
    if (!name.ident_like()) error(name.loc, "expected loop variable");
    s->name = std::string(name.text);
    expect(Tok::Assign, "loop header");
    s->lo = parse_expr();
    expect(Tok::KwTo, "loop bound");
    s->hi = parse_expr();
    expect(Tok::RParen, "loop header");
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_return() {
    auto s = make_stmt(StmtKind::Return, cur().loc);
    expect(Tok::KwReturn, "return");
    if (!at(Tok::Semi)) s->value = parse_expr();
    expect(Tok::Semi, "statement end");
    return s;
  }

  StmtPtr parse_print() {
    auto s = make_stmt(StmtKind::Print, cur().loc);
    expect(Tok::KwPrint, "print");
    expect(Tok::LParen, "print");
    do s->args.push_back(parse_expr());
    while (accept(Tok::Comma));
    expect(Tok::RParen, "print");
    expect(Tok::Semi, "statement end");
    return s;
  }

  // -- OpenMP constructs -----------------------------------------------------
  StmtPtr parse_omp() {
    const SourceLoc loc = cur().loc;
    expect(Tok::KwOmp, "omp directive");
    switch (cur().kind) {
      case Tok::KwParallel: {
        eat();
        auto s = make_stmt(StmtKind::OmpParallel, loc);
        s->region_id = next_region_id_++;
        // Clauses in any order.
        for (;;) {
          if (at(Tok::KwNumThreads)) {
            eat();
            expect(Tok::LParen, "num_threads clause");
            s->num_threads = parse_expr();
            expect(Tok::RParen, "num_threads clause");
          } else if (at(Tok::KwIf)) {
            eat();
            expect(Tok::LParen, "if clause");
            s->if_clause = parse_expr();
            expect(Tok::RParen, "if clause");
          } else {
            break;
          }
        }
        s->body = parse_block();
        return s;
      }
      case Tok::KwSingle: {
        eat();
        auto s = make_stmt(StmtKind::OmpSingle, loc);
        s->region_id = next_region_id_++;
        s->nowait = accept(Tok::KwNowait);
        s->body = parse_block();
        return s;
      }
      case Tok::KwMaster: {
        eat();
        auto s = make_stmt(StmtKind::OmpMaster, loc);
        s->region_id = next_region_id_++;
        s->body = parse_block();
        return s;
      }
      case Tok::KwCritical: {
        eat();
        auto s = make_stmt(StmtKind::OmpCritical, loc);
        s->region_id = next_region_id_++;
        s->body = parse_block();
        return s;
      }
      case Tok::KwBarrier: {
        eat();
        auto s = make_stmt(StmtKind::OmpBarrier, loc);
        expect(Tok::Semi, "barrier");
        return s;
      }
      case Tok::KwSections: {
        eat();
        auto s = make_stmt(StmtKind::OmpSections, loc);
        s->region_id = next_region_id_++;
        s->nowait = accept(Tok::KwNowait);
        expect(Tok::LBrace, "sections");
        while (at(Tok::KwOmp) && peek().kind == Tok::KwSection) {
          const SourceLoc sloc = cur().loc;
          eat(); // omp
          eat(); // section
          auto sec = make_stmt(StmtKind::OmpSection, sloc);
          sec->region_id = next_region_id_++;
          sec->body = parse_block();
          s->body.push_back(std::move(sec));
        }
        expect(Tok::RBrace, "sections");
        if (s->body.empty())
          error(loc, "omp sections requires at least one omp section");
        return s;
      }
      case Tok::KwFor: {
        eat();
        auto s = make_stmt(StmtKind::OmpFor, loc);
        s->region_id = next_region_id_++;
        s->nowait = accept(Tok::KwNowait);
        expect(Tok::LParen, "loop header");
        const Token name = eat();
        if (!name.ident_like()) error(name.loc, "expected loop variable");
        s->name = std::string(name.text);
        expect(Tok::Assign, "loop header");
        s->lo = parse_expr();
        expect(Tok::KwTo, "loop bound");
        s->hi = parse_expr();
        expect(Tok::RParen, "loop header");
        s->body = parse_block();
        return s;
      }
      default:
        error(cur().loc, str::cat("unknown omp directive '", cur().text, "'"));
        fatal_ = true;
        return nullptr;
    }
  }

  // -- Expressions (precedence climbing) --------------------------------------
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(Tok::OrOr)) {
      const SourceLoc loc = eat().loc;
      lhs = Expr::binary(ir::BinaryOp::Or, std::move(lhs), parse_and(), loc);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (at(Tok::AndAnd)) {
      const SourceLoc loc = eat().loc;
      lhs = Expr::binary(ir::BinaryOp::And, std::move(lhs), parse_cmp(), loc);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    for (;;) {
      ir::BinaryOp op;
      switch (cur().kind) {
        case Tok::Lt: op = ir::BinaryOp::Lt; break;
        case Tok::Le: op = ir::BinaryOp::Le; break;
        case Tok::Gt: op = ir::BinaryOp::Gt; break;
        case Tok::Ge: op = ir::BinaryOp::Ge; break;
        case Tok::EqEq: op = ir::BinaryOp::Eq; break;
        case Tok::Ne: op = ir::BinaryOp::Ne; break;
        default: return lhs;
      }
      const SourceLoc loc = eat().loc;
      lhs = Expr::binary(op, std::move(lhs), parse_add(), loc);
    }
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    for (;;) {
      ir::BinaryOp op;
      if (at(Tok::Plus)) op = ir::BinaryOp::Add;
      else if (at(Tok::Minus)) op = ir::BinaryOp::Sub;
      else return lhs;
      const SourceLoc loc = eat().loc;
      lhs = Expr::binary(op, std::move(lhs), parse_mul(), loc);
    }
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      ir::BinaryOp op;
      if (at(Tok::Star)) op = ir::BinaryOp::Mul;
      else if (at(Tok::Slash)) op = ir::BinaryOp::Div;
      else if (at(Tok::Percent)) op = ir::BinaryOp::Mod;
      else return lhs;
      const SourceLoc loc = eat().loc;
      lhs = Expr::binary(op, std::move(lhs), parse_unary(), loc);
    }
  }

  ExprPtr parse_unary() {
    if (at(Tok::Minus)) {
      const SourceLoc loc = eat().loc;
      return Expr::unary(ir::UnaryOp::Neg, parse_unary(), loc);
    }
    if (at(Tok::Not)) {
      const SourceLoc loc = eat().loc;
      return Expr::unary(ir::UnaryOp::Not, parse_unary(), loc);
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token t = cur();
    if (t.kind == Tok::Int) {
      eat();
      return Expr::int_lit(t.int_val, t.loc);
    }
    if (t.kind == Tok::LParen) {
      eat();
      ExprPtr e = parse_expr();
      expect(Tok::RParen, "parenthesized expression");
      return e;
    }
    if (t.ident_like()) {
      if (is_builtin_name(t.text) && peek().kind == Tok::LParen) {
        eat();
        expect(Tok::LParen, "builtin call");
        expect(Tok::RParen, "builtin call");
        ir::Builtin b = ir::Builtin::Rank;
        if (t.text == "size") b = ir::Builtin::Size;
        else if (t.text == "omp_thread_num") b = ir::Builtin::OmpThreadNum;
        else if (t.text == "omp_num_threads") b = ir::Builtin::OmpNumThreads;
        return Expr::builtin_call(b, t.loc);
      }
      if (peek().kind == Tok::LParen) {
        error(t.loc, str::cat("call to '", t.text,
                              "' cannot appear inside an expression; assign "
                              "its result to a variable first"));
        fatal_ = true;
        return Expr::int_lit(0, t.loc);
      }
      eat();
      return Expr::var_ref(std::string(t.text), t.loc);
    }
    error(t.loc, str::cat("expected expression, got '", t.text, "'"));
    fatal_ = true;
    if (!at(Tok::End)) eat();
    return Expr::int_lit(0, t.loc);
  }

  std::vector<Token> toks_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  bool fatal_ = false;
  int32_t next_stmt_id_ = 0;
  int32_t next_region_id_ = 0;
};

} // namespace

Program Parser::parse(const SourceManager& sm, int32_t file_id,
                      DiagnosticEngine& diags) {
  ParserImpl impl(Lexer::lex(sm, file_id, diags), diags);
  return impl.run();
}

Program Parser::parse_source(SourceManager& sm, std::string name,
                             std::string source, DiagnosticEngine& diags) {
  const int32_t id = sm.add_buffer(std::move(name), std::move(source));
  return parse(sm, id, diags);
}

} // namespace parcoach::frontend
