#!/usr/bin/env python3
"""Bench regression guard for the bytecode execution engine.

Compares a fresh bench_interp_engine JSON report against the committed
baseline (bench/BENCH_interp.baseline.json) and fails if the interpreter-
bound scenario regressed.

CI machines differ in raw speed, so absolute ns/stmt numbers are not
comparable across runs. The guard instead compares the *ratio*
bytecode.ns_per_stmt / ast.ns_per_stmt on corpus_interp_bound: the AST
tree-walker runs the identical workload in the same process, so it acts as
the machine-speed normalizer. A pass-pipeline regression shows up as the
bytecode engine losing ground against the oracle regardless of host.

Usage: bench_guard.py CURRENT.json BASELINE.json [--threshold=0.15]

Exit codes: 0 ok, 1 regression beyond threshold, 2 bad input.
"""

import json
import sys

SCENARIO = "corpus_interp_bound"


def load_ratio(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for sc in doc.get("scenarios", []):
        if sc.get("scenario") == SCENARIO:
            try:
                ast_ns = float(sc["ast"]["ns_per_stmt"])
                bc_ns = float(sc["bytecode"]["ns_per_stmt"])
            except (KeyError, TypeError, ValueError):
                print(f"bench_guard: malformed {SCENARIO} entry in {path}",
                      file=sys.stderr)
                sys.exit(2)
            if ast_ns <= 0 or bc_ns <= 0:
                print(f"bench_guard: non-positive timing in {path}",
                      file=sys.stderr)
                sys.exit(2)
            return bc_ns / ast_ns, ast_ns, bc_ns
    print(f"bench_guard: scenario {SCENARIO!r} not found in {path}",
          file=sys.stderr)
    sys.exit(2)


def main(argv):
    threshold = 0.15
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    cur_ratio, cur_ast, cur_bc = load_ratio(paths[0])
    base_ratio, base_ast, base_bc = load_ratio(paths[1])

    # ratio < 1 means the bytecode engine is faster than the oracle; a
    # growing ratio means it is losing its lead.
    regression = cur_ratio / base_ratio - 1.0
    print(f"bench_guard: {SCENARIO}")
    print(f"  baseline: ast {base_ast:8.2f} ns/stmt  bytecode {base_bc:8.2f}"
          f"  ratio {base_ratio:.4f} ({1 / base_ratio:.2f}x)")
    print(f"  current:  ast {cur_ast:8.2f} ns/stmt  bytecode {cur_bc:8.2f}"
          f"  ratio {cur_ratio:.4f} ({1 / cur_ratio:.2f}x)")
    print(f"  normalized change: {regression:+.1%} (threshold +{threshold:.0%})")
    if regression > threshold:
        print("bench_guard: FAIL — bytecode engine regressed vs the AST-"
              "normalized baseline", file=sys.stderr)
        return 1
    print("bench_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
