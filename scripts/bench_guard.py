#!/usr/bin/env python3
"""Bench regression guards for the execution engines and the fault layer.

Two modes, selected by the shape of the input:

1. Bytecode-engine guard (default, two positional files):
   Compares a fresh bench_interp_engine JSON report against the committed
   baseline (bench/BENCH_interp.baseline.json) and fails if the interpreter-
   bound scenario regressed.

   CI machines differ in raw speed, so absolute ns/stmt numbers are not
   comparable across runs. The guard instead compares the *ratio*
   bytecode.ns_per_stmt / ast.ns_per_stmt on corpus_interp_bound: the AST
   tree-walker runs the identical workload in the same process, so it acts
   as the machine-speed normalizer. A pass-pipeline regression shows up as
   the bytecode engine losing ground against the oracle regardless of host.

2. Fault-layer guard (--fault, one positional file):
   Gates a bench_fault_overhead report (BENCH_fault.json). That bench is
   self-normalizing — each variant's overhead_vs_baseline is a ratio against
   an in-process baseline run — so no committed baseline file is needed.
   Budgets (generous; locally both sit at ~0%):
     fault_off  <= --fault-off-budget  (default 8%): a disabled injector is
                one branch on a cached null pointer per hook;
     fault_idle <= --fault-idle-budget (default 20%): an armed injector that
                never fires pays one relaxed fetch_add per collective
                arrival — the failure-detection hot path the recovery ops
                (revoke/shrink/agree) rely on.

Usage:
  bench_guard.py CURRENT.json BASELINE.json [--threshold=0.15]
  bench_guard.py --fault BENCH_fault.json [--fault-off-budget=0.08]
                 [--fault-idle-budget=0.20]

Exit codes: 0 ok, 1 regression beyond threshold/budget, 2 bad input.
"""

import json
import sys

SCENARIO = "corpus_interp_bound"


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_ratio(path):
    doc = load_json(path)
    for sc in doc.get("scenarios", []):
        if sc.get("scenario") == SCENARIO:
            try:
                ast_ns = float(sc["ast"]["ns_per_stmt"])
                bc_ns = float(sc["bytecode"]["ns_per_stmt"])
            except (KeyError, TypeError, ValueError):
                print(f"bench_guard: malformed {SCENARIO} entry in {path}",
                      file=sys.stderr)
                sys.exit(2)
            if ast_ns <= 0 or bc_ns <= 0:
                print(f"bench_guard: non-positive timing in {path}",
                      file=sys.stderr)
                sys.exit(2)
            return bc_ns / ast_ns, ast_ns, bc_ns
    print(f"bench_guard: scenario {SCENARIO!r} not found in {path}",
          file=sys.stderr)
    sys.exit(2)


def guard_fault(path, off_budget, idle_budget):
    doc = load_json(path)
    kernels = doc.get("kernels")
    if not kernels:
        print(f"bench_guard: no kernels in {path}", file=sys.stderr)
        return 2
    budgets = {"fault_off": off_budget, "fault_idle": idle_budget}
    failed = False
    print(f"bench_guard: fault-layer overhead (off<={off_budget:.0%}, "
          f"idle<={idle_budget:.0%})")
    for k in kernels:
        name = k.get("kernel", "?")
        variants = k.get("variants", {})
        for variant, budget in budgets.items():
            try:
                overhead = float(variants[variant]["overhead_vs_baseline"])
            except (KeyError, TypeError, ValueError):
                print(f"bench_guard: malformed {variant} entry for kernel "
                      f"{name!r} in {path}", file=sys.stderr)
                return 2
            verdict = "ok" if overhead <= budget else "FAIL"
            print(f"  {name:24s} {variant:10s} {overhead:+7.2%}  {verdict}")
            failed |= overhead > budget
    if failed:
        print("bench_guard: FAIL — fault-injection layer exceeded its "
              "overhead budget", file=sys.stderr)
        return 1
    print("bench_guard: OK")
    return 0


def main(argv):
    threshold = 0.15
    fault_mode = False
    off_budget = 0.08
    idle_budget = 0.20
    paths = []
    for arg in argv[1:]:
        if arg == "--fault":
            fault_mode = True
        elif arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--fault-off-budget="):
            off_budget = float(arg.split("=", 1)[1])
        elif arg.startswith("--fault-idle-budget="):
            idle_budget = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)

    if fault_mode:
        if len(paths) != 1:
            print(__doc__, file=sys.stderr)
            return 2
        return guard_fault(paths[0], off_budget, idle_budget)

    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    cur_ratio, cur_ast, cur_bc = load_ratio(paths[0])
    base_ratio, base_ast, base_bc = load_ratio(paths[1])

    # ratio < 1 means the bytecode engine is faster than the oracle; a
    # growing ratio means it is losing its lead.
    regression = cur_ratio / base_ratio - 1.0
    print(f"bench_guard: {SCENARIO}")
    print(f"  baseline: ast {base_ast:8.2f} ns/stmt  bytecode {base_bc:8.2f}"
          f"  ratio {base_ratio:.4f} ({1 / base_ratio:.2f}x)")
    print(f"  current:  ast {cur_ast:8.2f} ns/stmt  bytecode {cur_bc:8.2f}"
          f"  ratio {cur_ratio:.4f} ({1 / cur_ratio:.2f}x)")
    print(f"  normalized change: {regression:+.1%} (threshold +{threshold:.0%})")
    if regression > threshold:
        print("bench_guard: FAIL — bytecode engine regressed vs the AST-"
              "normalized baseline", file=sys.stderr)
        return 1
    print("bench_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
