// CC-protocol cost: marginal cost the instrumentation adds per verified
// collective, for both protocols:
//
//   legacy       the paper's scheme — a dedicated allgather round on the
//                verifier communicator before every instrumented collective
//                (2 synchronization rounds per collective);
//   piggybacked  the agreement id rides inside the application collective's
//                own slot arrival (1 synchronization round per collective).
//
// The summary reports ns per instrumented collective and the measured
// synchronization rounds per collective (from the world's slot counters) —
// the headline number is the drop from 2 to 1.
#include "rt/verifier.h"

#include <benchmark/benchmark.h>

#include <iostream>

namespace {

using namespace parcoach;

struct ProtocolStats {
  double ns_per_coll = 0;
  double rounds_per_coll = 0;
};

/// Times `rounds` instrumented allreduces per rank, with `one_check` run
/// once per collective inside the rank body; sync rounds per collective are
/// derived from the world's slot counters.
template <typename CheckedCollective>
ProtocolStats protocol_cost(int32_t ranks, int rounds,
                            CheckedCollective one_check) {
  simmpi::World::Options wopts;
  wopts.num_ranks = ranks;
  wopts.hang_timeout = std::chrono::milliseconds(10000);
  simmpi::World world(wopts);
  SourceManager sm;
  rt::Verifier verifier(sm, {}, ranks);
  const auto start = std::chrono::steady_clock::now();
  const auto rep = world.run([&](simmpi::Rank& mpi) {
    for (int i = 0; i < rounds; ++i) one_check(verifier, mpi);
  });
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!rep.ok) std::abort();
  ProtocolStats s;
  s.ns_per_coll = static_cast<double>(ns.count()) / rounds;
  s.rounds_per_coll =
      static_cast<double>(rep.app_slots_completed + rep.verifier_slots_completed) /
      static_cast<double>(rep.app_slots_completed);
  return s;
}

/// Legacy protocol: check_cc (verifier-communicator allgather) followed by
/// the collective — two synchronization rounds.
ProtocolStats legacy_cost(int32_t ranks, int rounds) {
  return protocol_cost(ranks, rounds, [](rt::Verifier& v, simmpi::Rank& mpi) {
    v.check_cc(mpi, ir::CollectiveKind::Allreduce, {}, ir::ReduceOp::Sum, -1);
    mpi.allreduce(1, simmpi::ReduceOp::Sum);
  });
}

/// Piggybacked protocol: the agreement id rides the collective's own slot.
ProtocolStats piggybacked_cost(int32_t ranks, int rounds) {
  return protocol_cost(ranks, rounds, [](rt::Verifier& v, simmpi::Rank& mpi) {
    simmpi::Signature sig{ir::CollectiveKind::Allreduce, -1,
                          simmpi::ReduceOp::Sum};
    sig.cc = v.cc_lane_id(sig.kind, sig.op, sig.root);
    benchmark::DoNotOptimize(mpi.execute(sig, 1).scalar);
  });
}

void bench_cc(benchmark::State& state, bool piggybacked) {
  const int32_t ranks = static_cast<int32_t>(state.range(0));
  constexpr int kRounds = 400;
  for (auto _ : state) {
    const ProtocolStats s = piggybacked ? piggybacked_cost(ranks, kRounds)
                                        : legacy_cost(ranks, kRounds);
    state.SetIterationTime(s.ns_per_coll * kRounds / 1e9);
    state.counters["rounds_per_coll"] = benchmark::Counter(s.rounds_per_coll);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}

void print_summary() {
  std::cout << "\n=== CC protocol cost per instrumented collective ===\n\n"
            << "ranks   protocol      ns/coll   sync-rounds/coll\n";
  for (int32_t ranks : {2, 4, 8}) {
    const ProtocolStats legacy = legacy_cost(ranks, 1000);
    const ProtocolStats piggy = piggybacked_cost(ranks, 1000);
    std::cout << ranks << "       legacy        "
              << static_cast<long>(legacy.ns_per_coll) << "      "
              << legacy.rounds_per_coll << "\n"
              << ranks << "       piggybacked   "
              << static_cast<long>(piggy.ns_per_coll) << "      "
              << piggy.rounds_per_coll << "\n";
  }
  std::cout << "\nShape to check: piggybacked runs exactly 1.0 sync round per "
               "collective (the\ncollective itself) where legacy pays 2.0, and "
               "ns/coll drops accordingly.\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("CcProtocol/legacy",
                               [](benchmark::State& st) { bench_cc(st, false); })
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
  benchmark::RegisterBenchmark("CcProtocol/piggybacked",
                               [](benchmark::State& st) { bench_cc(st, true); })
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
