// CC-protocol cost: latency of one collective-consistency round (an
// allgather of collective ids on the dedicated verifier communicator) as a
// function of the number of MPI processes — the marginal cost the paper's
// instrumentation adds per verified collective.
#include "rt/verifier.h"

#include <benchmark/benchmark.h>

#include <iostream>

namespace {

using namespace parcoach;

/// Runs `rounds` CC checks on every rank of an n-rank world; reports
/// nanoseconds per CC round (per rank).
double cc_round_ns(int32_t ranks, int rounds) {
  simmpi::World::Options wopts;
  wopts.num_ranks = ranks;
  wopts.hang_timeout = std::chrono::milliseconds(10000);
  simmpi::World world(wopts);
  SourceManager sm;
  rt::Verifier verifier(sm, {}, ranks);
  const auto start = std::chrono::steady_clock::now();
  const auto rep = world.run([&](simmpi::Rank& mpi) {
    for (int i = 0; i < rounds; ++i)
      verifier.check_cc(mpi, ir::CollectiveKind::Allreduce, {},
                        ir::ReduceOp::Sum, -1);
  });
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!rep.ok) std::abort();
  return static_cast<double>(ns.count()) / rounds;
}

void bench_cc(benchmark::State& state) {
  const int32_t ranks = static_cast<int32_t>(state.range(0));
  constexpr int kRounds = 400;
  for (auto _ : state) {
    const double per_round = cc_round_ns(ranks, kRounds);
    state.SetIterationTime(per_round * kRounds / 1e9);
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}

void print_summary() {
  std::cout << "\n=== CC round latency vs process count ===\n\n"
            << "ranks    ns/CC-round\n";
  for (int32_t ranks : {2, 4, 8}) {
    const double ns = cc_round_ns(ranks, 1000);
    std::cout << ranks << "        " << static_cast<long>(ns) << "\n";
  }
  std::cout << "\nShape to check: grows with rank count (allgather over more "
               "participants), stays in\nthe microsecond range — cheap next "
               "to any real collective.\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("CcProtocol/round", bench_cc)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
