// Cost of the fault-injection layer ("zero overhead when off").
//
// Two collective-heavy kernels run uninstrumented under three variants:
//   baseline     no FaultInjector attached at all
//   fault_off    an injector constructed with enabled=false is attached —
//                effective() filters it to null, so every hook reduces to one
//                branch on a cached null pointer and must sit on the baseline
//   fault_idle   an armed injector whose crash never fires (crash_at far
//                beyond program length, no delay/jitter) — the price of the
//                live per-arrival counter on the hot path
// The summary reports ns per application collective and the overhead of each
// variant against the baseline.
//
// Flags (accepted before the google-benchmark flags):
//   --json=PATH   write machine-readable results to PATH (BENCH_fault.json
//                 in CI) with ns/collective per kernel/variant and overheads.
//   --smoke       skip the registered google-benchmark runs and produce the
//                 summary/JSON from fewer repetitions (CI smoke step).
#include "driver/pipeline.h"
#include "interp/executor.h"
#include "support/fault.h"
#include "support/json_writer.h"
#include "support/str.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

struct Kernel {
  const char* name;
  std::string source;
};

std::vector<Kernel> kernels() {
  return {
      Kernel{"bcast_reduce_loop",
             str::cat("func main() {\n  mpi_init(serialized);\n"
                      "  var x = rank() + 1;\n  for (r = 0 to ", 300, ") {\n"
                      "    x = mpi_bcast(x, 0);\n"
                      "    x = mpi_reduce(x, sum, 0);\n"
                      "  }\n  mpi_finalize();\n}\n")},
      Kernel{"funneled_barrier",
             str::cat("func main() {\n  mpi_init(serialized);\n"
                      "  for (r = 0 to ", 150, ") {\n"
                      "    omp parallel num_threads(2) {\n"
                      "      omp barrier;\n"
                      "      omp master {\n"
                      "        mpi_barrier();\n"
                      "      }\n"
                      "      omp barrier;\n"
                      "    }\n"
                      "  }\n  mpi_finalize();\n}\n")},
  };
}

enum class Variant { Baseline, FaultOff, FaultIdle };

constexpr const char* kVariantNames[] = {"baseline", "fault_off", "fault_idle"};

struct Compiled {
  SourceManager sm;
  driver::CompileResult result;
};

std::unique_ptr<Compiled> compile_kernel(const Kernel& k) {
  auto c = std::make_unique<Compiled>();
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  c->result = driver::compile(c->sm, k.name, k.source, diags, opts);
  if (!c->result.ok) std::abort();
  return c;
}

struct RunStats {
  double ns = 0;
  uint64_t slots = 0; // application collectives completed
};

RunStats run_once(const Compiled& c, Variant variant) {
  // Fresh injector per run: the per-rank arrival counters are run state.
  std::unique_ptr<FaultInjector> inj;
  if (variant == Variant::FaultOff) {
    FaultPlan plan;
    plan.enabled = false;
    plan.crash_rank = 0; // armed on paper, filtered by effective()
    plan.crash_at = 1u << 30;
    inj = std::make_unique<FaultInjector>(plan, 2);
  }
  if (variant == Variant::FaultIdle) {
    FaultPlan plan;
    plan.crash_rank = 0;
    plan.crash_at = 1u << 30; // never reached: counter cost only
    inj = std::make_unique<FaultInjector>(plan, 2);
  }
  interp::Executor exec(c.result.program, c.sm, /*plan=*/nullptr);
  interp::ExecOptions eopts;
  eopts.num_ranks = 2;
  eopts.num_threads = 2;
  eopts.mpi.hang_timeout = std::chrono::milliseconds(5000);
  eopts.mpi.fault = inj.get();
  const auto start = std::chrono::steady_clock::now();
  const auto result = exec.run(eopts);
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!result.clean) std::abort();
  if (inj && inj->crashes_fired() != 0) std::abort();
  RunStats s;
  s.ns = static_cast<double>(ns.count());
  s.slots = result.mpi.app_slots_completed;
  return s;
}

void bench_run(benchmark::State& state, size_t kernel, Variant variant) {
  static const auto ks = kernels();
  const auto c = compile_kernel(ks[kernel]);
  for (auto _ : state) {
    const auto stats = run_once(*c, variant);
    state.SetIterationTime(stats.ns / 1e9);
  }
}

void register_benchmarks() {
  static const auto ks = kernels();
  static constexpr Variant kVariants[] = {Variant::Baseline, Variant::FaultOff,
                                          Variant::FaultIdle};
  for (size_t k = 0; k < ks.size(); ++k) {
    for (Variant v : kVariants) {
      benchmark::RegisterBenchmark(
          (std::string("FaultOverhead/") + ks[k].name + "/" +
           kVariantNames[static_cast<size_t>(v)])
              .c_str(),
          [k, v](benchmark::State& st) { bench_run(st, k, v); })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(3);
    }
  }
}

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

struct VariantResult {
  double ns = 0;          // best-of-reps wall clock
  double ns_per_coll = 0; // best-of-reps / app collectives
  double overhead = 0;    // vs baseline, fractional
};

struct KernelResult {
  std::string kernel;
  VariantResult variants[3]; // indexed by Variant
};

std::vector<KernelResult> measure_all(int reps) {
  std::vector<KernelResult> out;
  for (const auto& k : kernels()) {
    const auto c = compile_kernel(k);
    KernelResult kr;
    kr.kernel = k.name;
    std::vector<double> ns[3];
    uint64_t slots = 1;
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t v = 0; v < 3; ++v) {
        const auto s = run_once(*c, static_cast<Variant>(v));
        ns[v].push_back(s.ns);
        if (s.slots > 0) slots = s.slots;
      }
    }
    for (size_t v = 0; v < 3; ++v) {
      kr.variants[v].ns = min_of(ns[v]);
      kr.variants[v].ns_per_coll =
          kr.variants[v].ns / static_cast<double>(slots);
      kr.variants[v].overhead = kr.variants[v].ns / kr.variants[0].ns - 1.0;
    }
    out.push_back(std::move(kr));
  }
  return out;
}

void print_summary(const std::vector<KernelResult>& results, int reps) {
  std::cout << "\n=== Fault-injection overhead (2 ranks x 2 threads, best of "
            << reps << " runs) ===\n\n"
            << std::left << std::setw(22) << "kernel" << std::right
            << std::setw(14) << "baseline ns" << std::setw(12) << "off %"
            << std::setw(12) << "idle %" << '\n';
  for (const auto& kr : results) {
    std::cout << std::left << std::setw(22) << kr.kernel << std::right
              << std::setw(14) << std::fixed << std::setprecision(0)
              << kr.variants[0].ns_per_coll << std::setw(11)
              << std::setprecision(2) << 100.0 * kr.variants[1].overhead << '%'
              << std::setw(11) << 100.0 * kr.variants[2].overhead << '%'
              << '\n';
  }
  std::cout << "\nShape to check: fault_off must sit on the baseline (the "
               "disabled layer is one\nbranch on a cached null pointer per "
               "hook — <1% is the budget); fault_idle pays\nfor one relaxed "
               "fetch_add per collective arrival and should stay within a\n"
               "few percent.\n";
}

void write_json(const std::string& path,
                const std::vector<KernelResult>& results) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("ranks", 2);
  w.key("kernels");
  w.begin_array();
  for (const auto& kr : results) {
    w.begin_object();
    w.kv("kernel", kr.kernel);
    w.key("variants");
    w.begin_object();
    for (size_t v = 0; v < 3; ++v) {
      const auto& vr = kr.variants[v];
      w.key(kVariantNames[v]);
      w.begin_object();
      w.kv("ns", static_cast<int64_t>(vr.ns));
      w.kv("ns_per_collective", vr.ns_per_coll, 1);
      w.kv("overhead_vs_baseline", vr.overhead, 4);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "wrote " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  // Strip our flags before handing argv to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!smoke) {
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const int reps = smoke ? 2 : 5;
  const auto results = measure_all(reps);
  print_summary(results, reps);
  if (!json_path.empty()) write_json(json_path, results);
  return 0;
}
