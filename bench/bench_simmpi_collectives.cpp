// Substrate micro-benchmark: latency of each simulated blocking collective
// versus rank count (EPCC-suite shape: per-operation latency curves). Keeps
// the simulator honest — collectives must scale sanely with participants so
// runtime-overhead measurements upstream are meaningful.
#include "simmpi/world.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <thread>
#include <vector>

namespace {

using namespace parcoach;
using simmpi::Rank;

enum class Op { Barrier, Bcast, Allreduce, Allgather, Alltoall, Scan };

const char* name_of(Op op) {
  switch (op) {
    case Op::Barrier: return "barrier";
    case Op::Bcast: return "bcast";
    case Op::Allreduce: return "allreduce";
    case Op::Allgather: return "allgather";
    case Op::Alltoall: return "alltoall";
    case Op::Scan: return "scan";
  }
  return "?";
}

void run_op(Rank& mpi, Op op) {
  switch (op) {
    case Op::Barrier: mpi.barrier(); break;
    case Op::Bcast: benchmark::DoNotOptimize(mpi.bcast(1, 0)); break;
    case Op::Allreduce:
      benchmark::DoNotOptimize(mpi.allreduce(mpi.rank(), simmpi::ReduceOp::Sum));
      break;
    case Op::Allgather:
      benchmark::DoNotOptimize(mpi.allgather(mpi.rank()).size());
      break;
    case Op::Alltoall: {
      std::vector<int64_t> v(static_cast<size_t>(mpi.size()), mpi.rank());
      benchmark::DoNotOptimize(mpi.alltoall(v).size());
      break;
    }
    case Op::Scan:
      benchmark::DoNotOptimize(mpi.scan(1, simmpi::ReduceOp::Sum));
      break;
  }
}

double op_latency_ns(Op op, int32_t ranks, int rounds) {
  simmpi::World::Options wopts;
  wopts.num_ranks = ranks;
  wopts.hang_timeout = std::chrono::milliseconds(10000);
  simmpi::World world(wopts);
  const auto start = std::chrono::steady_clock::now();
  const auto rep = world.run([&](Rank& mpi) {
    for (int i = 0; i < rounds; ++i) run_op(mpi, op);
  });
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!rep.ok) std::abort();
  // Slot-engine accounting: every collective must cost exactly one
  // synchronization round (one completed slot).
  if (rep.app_slots_completed != static_cast<uint64_t>(rounds)) std::abort();
  return static_cast<double>(ns.count()) / rounds;
}

/// Multithreaded hammering: `threads` per rank race same-signature
/// allreduces through the slot engine (MPI_THREAD_MULTIPLE, no external
/// serialization). Exercises the per-slot parking + atomic arrival path the
/// single-threaded curves cannot: with the old communicator-wide mutex and
/// thundering-herd notify_all this scaled badly with thread count.
double mt_allreduce_ns(int32_t ranks, int threads, int rounds_per_thread) {
  simmpi::World::Options wopts;
  wopts.num_ranks = ranks;
  wopts.hang_timeout = std::chrono::milliseconds(10000);
  simmpi::World world(wopts);
  const auto start = std::chrono::steady_clock::now();
  const auto rep = world.run([&](Rank& mpi) {
    mpi.init(parcoach::ir::ThreadLevel::Multiple);
    auto worker = [&] {
      for (int i = 0; i < rounds_per_thread; ++i)
        benchmark::DoNotOptimize(mpi.allreduce(1, simmpi::ReduceOp::Sum));
    };
    std::vector<std::thread> ts;
    for (int t = 1; t < threads; ++t) ts.emplace_back(worker);
    worker();
    for (auto& t : ts) t.join();
  });
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!rep.ok) std::abort();
  const uint64_t total = static_cast<uint64_t>(threads) * rounds_per_thread;
  if (rep.app_slots_completed != total) std::abort();
  return static_cast<double>(ns.count()) / static_cast<double>(total);
}

void bench_collective(benchmark::State& state, Op op) {
  const int32_t ranks = static_cast<int32_t>(state.range(0));
  constexpr int kRounds = 300;
  for (auto _ : state)
    state.SetIterationTime(op_latency_ns(op, ranks, kRounds) * kRounds / 1e9);
  state.SetItemsProcessed(state.iterations() * kRounds);
}

void print_summary() {
  std::cout << "\n=== simmpi collective latency (ns/op, 1 slot round per op) "
               "===\n\nop          ";
  for (int32_t ranks : {2, 4, 8}) std::cout << "  ranks=" << ranks << "  ";
  std::cout << '\n';
  for (Op op : {Op::Barrier, Op::Bcast, Op::Allreduce, Op::Allgather,
                Op::Alltoall, Op::Scan}) {
    std::cout << name_of(op);
    for (size_t pad = std::string(name_of(op)).size(); pad < 12; ++pad)
      std::cout << ' ';
    for (int32_t ranks : {2, 4, 8})
      std::cout << "  " << static_cast<long>(op_latency_ns(op, ranks, 600))
                << "      ";
    std::cout << '\n';
  }
  std::cout << "\n=== multithreaded allreduce (2 ranks, ns/op vs threads/rank) "
               "===\n\n";
  for (int threads : {1, 2, 4}) {
    std::cout << "threads=" << threads << "    "
              << static_cast<long>(mt_allreduce_ns(2, threads, 400)) << '\n';
  }
  std::cout << "\nShape to check: per-op latency grows gently with rank count; "
               "the multithreaded\ncurve must not explode with thread count "
               "(per-slot parking, no thundering herd).\n";
}

} // namespace

int main(int argc, char** argv) {
  for (Op op : {Op::Barrier, Op::Bcast, Op::Allreduce, Op::Allgather,
                Op::Alltoall, Op::Scan}) {
    benchmark::RegisterBenchmark(
        (std::string("SimMpi/") + name_of(op)).c_str(),
        [op](benchmark::State& st) { bench_collective(st, op); })
        ->Arg(2)
        ->Arg(4)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::RegisterBenchmark("SimMpi/allreduce_mt", [](benchmark::State& st) {
    const int threads = static_cast<int>(st.range(0));
    constexpr int kRounds = 300;
    for (auto _ : st)
      st.SetIterationTime(mt_allreduce_ns(2, threads, kRounds) * kRounds *
                          threads / 1e9);
    st.SetItemsProcessed(st.iterations() * kRounds * threads);
  })
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(2);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
