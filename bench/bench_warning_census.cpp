// Warning census (Section 4 prose) + Ablation B (rank-taint refinement).
//
// Regenerates the compile-time output the paper describes: per benchmark,
// the number of potential-error warnings by type, with collective names and
// source lines available in the diagnostics. The ablation column shows how
// many Algorithm-1 conditionals survive the rank-taint refinement (false
// positive reduction on rank-uniform control flow such as HERA's
// Allreduce-driven regrid decision).
//
// google-benchmark timings cover the three analysis stages separately
// (summaries, phases 1+2, Algorithm 1) per subject.
#include "core/summaries.h"
#include "driver/pipeline.h"
#include "driver/report.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

const std::vector<workloads::GeneratedProgram>& subjects() {
  static const auto s = workloads::figure1_suite();
  return s;
}

struct Prepared {
  SourceManager sm;
  std::unique_ptr<ir::Module> mod;
};

std::unique_ptr<Prepared> prepare(size_t subject) {
  auto p = std::make_unique<Prepared>();
  DiagnosticEngine diags;
  auto prog = frontend::Parser::parse_source(p->sm, subjects()[subject].name,
                                             subjects()[subject].source, diags);
  frontend::Sema::analyze(prog, diags);
  p->mod = frontend::Lowering::lower(prog, diags);
  if (diags.has_errors()) std::abort();
  return p;
}

void bench_summaries(benchmark::State& state) {
  auto p = prepare(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto sums = core::Summaries::build(*p->mod);
    benchmark::DoNotOptimize(sums.all().size());
  }
}

void bench_phases(benchmark::State& state) {
  auto p = prepare(static_cast<size_t>(state.range(0)));
  const auto sums = core::Summaries::build(*p->mod);
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto r = core::run_phases(*p->mod, sums, {}, diags);
    benchmark::DoNotOptimize(r.multithreaded.size());
  }
}

void bench_algorithm1(benchmark::State& state) {
  auto p = prepare(static_cast<size_t>(state.range(0)));
  const auto sums = core::Summaries::build(*p->mod);
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto r = core::run_algorithm1(*p->mod, sums, {}, diags);
    benchmark::DoNotOptimize(r.divergences.size());
  }
}

void register_benchmarks() {
  for (size_t s = 0; s < subjects().size(); ++s) {
    const auto& name = subjects()[s].name;
    benchmark::RegisterBenchmark(("Census/summaries/" + name).c_str(),
                                 bench_summaries)
        ->Arg(static_cast<int64_t>(s))
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("Census/phases12/" + name).c_str(),
                                 bench_phases)
        ->Arg(static_cast<int64_t>(s))
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(("Census/algorithm1/" + name).c_str(),
                                 bench_algorithm1)
        ->Arg(static_cast<int64_t>(s))
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  }
}

void print_refinement_ablation() {
  struct Config {
    const char* name;
    bool taint;
    bool sequences;
  };
  constexpr Config kConfigs[] = {
      {"paper (PDF+ membership)", false, false},
      {"+rank-taint", true, false},
      {"+sequence-match", false, true},
      {"+both", true, true},
  };
  std::cout << "\n=== Ablation B': Algorithm 1 refinements (phase-3 warning "
               "count per subject) ===\n\n"
            << std::left << std::setw(28) << "configuration";
  for (const auto& g : subjects()) std::cout << std::right << std::setw(12) << g.name;
  std::cout << '\n';
  for (const auto& cfg : kConfigs) {
    std::cout << std::left << std::setw(28) << cfg.name;
    for (const auto& g : subjects()) {
      SourceManager sm;
      DiagnosticEngine diags;
      driver::PipelineOptions opts;
      opts.mode = driver::Mode::Warnings;
      opts.algorithm1.rank_taint_filter = cfg.taint;
      opts.algorithm1.match_sequences = cfg.sequences;
      const auto r = driver::compile(sm, g.name, g.source, diags, opts);
      if (!r.ok) std::abort();
      std::cout << std::right << std::setw(12) << r.algorithm1.divergences.size();
    }
    std::cout << '\n';
  }
  std::cout << "\nEach refinement only removes warnings (monotone), and the "
               "suites stay fully\ncovered by the dynamic phase regardless of "
               "configuration.\n";
}

void print_census() {
  std::vector<driver::WarningCensus> rows;
  for (const auto& g : subjects()) {
    SourceManager sm;
    DiagnosticEngine diags;
    driver::PipelineOptions opts;
    opts.mode = driver::Mode::WarningsAndCodegen;
    const auto r = driver::compile(sm, g.name, g.source, diags, opts);
    if (!r.ok) std::abort();
    auto census = driver::census_of(g.name, r, diags);
    census.code_lines = g.code_lines;
    rows.push_back(census);
  }
  std::cout << "\n=== Warning census (ph3 = Algorithm 1 conditionals, "
               "ph3-rank = after rank-taint refinement) ===\n\n"
            << driver::format_census_table(rows)
            << "\nAblation B: the refinement drops rank-uniform conditionals "
               "(loop bounds, Allreduce-driven\ndecisions); the suites are "
               "hybrid-clean so ph1/ph2/lvl must be 0.\n";
}

} // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_census();
  print_refinement_ablation();
  return 0;
}
