// Communicator scaling: collectives/sec as the number of live communicators
// grows 1 -> 8 on one world.
//
// Each point duplicates MPI_COMM_WORLD until C communicators are live, then
// every rank drives allreduces round-robin across all C handles (all through
// the registry's handle path, so the curve includes the resolve cost — the
// honest price of first-class communicators). Flat ns/collective across the
// sweep means per-comm slot engines scale independently; a rising curve
// would expose contention in the registry or the watchdog polling.
//
// Flags (accepted before the google-benchmark flags):
//   --json=PATH   write machine-readable results to PATH (BENCH_comm.json in
//                 CI) with ns/collective and collectives/sec per point.
//   --smoke       skip the registered google-benchmark runs and produce the
//                 summary/JSON from fewer iterations (CI smoke step).
#include "simmpi/world.h"
#include "support/json_writer.h"
#include "support/str.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

namespace {

using namespace parcoach;
using simmpi::Rank;
using simmpi::ReduceOp;
using simmpi::Signature;
using simmpi::World;

constexpr int32_t kRanks = 4;
constexpr int kCommCounts[] = {1, 2, 4, 8};

struct Point {
  int comms = 1;
  double ns_per_coll = 0;
  double colls_per_sec = 0;
  uint64_t slots = 0;
};

/// One sweep point: C live comms, `iters` collectives per rank round-robin.
Point run_once(int n_comms, int iters) {
  World::Options o;
  o.num_ranks = kRanks;
  o.hang_timeout = std::chrono::milliseconds(10000);
  World w(o);
  const auto start = std::chrono::steady_clock::now();
  const auto rep = w.run([&](Rank& mpi) {
    std::vector<int64_t> comms{Rank::kCommWorld};
    for (int c = 1; c < n_comms; ++c)
      comms.push_back(mpi.comm_dup(Rank::kCommWorld));
    const Signature sum{ir::CollectiveKind::Allreduce, -1, ReduceOp::Sum};
    for (int i = 0; i < iters; ++i)
      mpi.execute_on(comms[static_cast<size_t>(i) % comms.size()], sum, 1);
  });
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!rep.ok) std::abort();
  Point p;
  p.comms = n_comms;
  p.ns_per_coll = static_cast<double>(ns.count()) / iters;
  p.colls_per_sec = 1e9 / p.ns_per_coll;
  p.slots = rep.app_slots_completed;
  return p;
}

std::vector<Point> measure_all(int iters, int reps) {
  std::vector<Point> out;
  for (int c : kCommCounts) {
    Point best;
    for (int r = 0; r < reps; ++r) {
      const Point p = run_once(c, iters);
      if (r == 0 || p.ns_per_coll < best.ns_per_coll) best = p;
    }
    out.push_back(best);
  }
  return out;
}

void bench_point(benchmark::State& state) {
  const int comms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Point p = run_once(comms, 2000);
    state.SetIterationTime(p.ns_per_coll * 2000 / 1e9);
    state.counters["ns_per_coll"] = benchmark::Counter(p.ns_per_coll);
  }
}

void print_summary(const std::vector<Point>& points, int iters) {
  std::cout << "\n=== Communicator scaling (" << kRanks
            << " ranks, round-robin allreduce, " << iters
            << " colls/rank) ===\n\n"
            << std::left << std::setw(10) << "comms" << std::right
            << std::setw(16) << "ns/collective" << std::setw(18)
            << "collectives/s" << std::setw(12) << "slots" << '\n';
  for (const auto& p : points) {
    std::cout << std::left << std::setw(10) << p.comms << std::right
              << std::setw(16) << std::fixed << std::setprecision(0)
              << p.ns_per_coll << std::setw(18) << p.colls_per_sec
              << std::setw(12) << p.slots << '\n';
  }
  std::cout << "\nShape to check: ns/collective stays roughly flat as live "
               "comms grow — per-comm\nslot engines are independent; only "
               "the registry resolve is shared.\n";
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("ranks", kRanks);
  w.key("points");
  w.begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.kv("comms", p.comms);
    w.kv("ns_per_collective", p.ns_per_coll, 1);
    w.kv("collectives_per_sec", p.colls_per_sec, 0);
    w.kv("slots", p.slots);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "wrote " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!smoke) {
    for (int c : kCommCounts) {
      benchmark::RegisterBenchmark(
          str::cat("CommScaling/live_comms:", c).c_str(), bench_point)
          ->Arg(c)
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(3);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const int iters = smoke ? 1500 : 6000;
  const int reps = smoke ? 2 : 4;
  const auto points = measure_all(iters, reps);
  print_summary(points, iters);
  if (!json_path.empty()) write_json(json_path, points);
  return 0;
}
