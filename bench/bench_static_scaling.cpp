// Static-analysis scalability: analysis cost versus program size, swept over
// HERA skeleton scale (packages x kernels). Verifies the analyses stay
// near-linear in IR size — the property that keeps Figure-1 overheads small
// on large codes (HERA is "a large multi-physics platform" in the paper).
#include "core/algorithm1.h"
#include "core/phases.h"
#include "core/summaries.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

struct Prepared {
  SourceManager sm;
  std::unique_ptr<ir::Module> mod;
  size_t instructions = 0;
  size_t code_lines = 0;
};

std::unique_ptr<Prepared> prepare(int32_t packages) {
  workloads::HeraParams params;
  params.packages = packages;
  params.kernels = 8;
  const auto g = workloads::make_hera(params);
  auto p = std::make_unique<Prepared>();
  DiagnosticEngine diags;
  auto prog = frontend::Parser::parse_source(p->sm, g.name, g.source, diags);
  frontend::Sema::analyze(prog, diags);
  p->mod = frontend::Lowering::lower(prog, diags);
  if (diags.has_errors()) std::abort();
  p->instructions = p->mod->num_instructions();
  p->code_lines = g.code_lines;
  return p;
}

double full_analysis_ns(const ir::Module& mod) {
  DiagnosticEngine diags;
  const auto start = std::chrono::steady_clock::now();
  const auto sums = core::Summaries::build(mod);
  const auto phases = core::run_phases(mod, sums, {}, diags);
  const auto alg1 = core::run_algorithm1(mod, sums, {}, diags);
  benchmark::DoNotOptimize(phases.multithreaded.size() + alg1.divergences.size());
  return static_cast<double>(
      (std::chrono::steady_clock::now() - start).count());
}

void bench_analysis(benchmark::State& state) {
  const auto p = prepare(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    const double ns = full_analysis_ns(*p->mod);
    state.SetIterationTime(ns / 1e9);
  }
  state.counters["instructions"] =
      benchmark::Counter(static_cast<double>(p->instructions));
  state.counters["ns_per_instr"] = benchmark::Counter(
      full_analysis_ns(*p->mod) / static_cast<double>(p->instructions));
}

void print_summary() {
  std::cout << "\n=== Analysis scaling over HERA skeleton size ===\n\n"
            << std::left << std::setw(10) << "packages" << std::right
            << std::setw(10) << "lines" << std::setw(12) << "instrs"
            << std::setw(14) << "analysis ms" << std::setw(14) << "ns/instr"
            << '\n';
  for (int32_t packages : {2, 4, 8, 16, 32}) {
    const auto p = prepare(packages);
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep)
      best = std::min(best, full_analysis_ns(*p->mod));
    std::cout << std::left << std::setw(10) << packages << std::right
              << std::setw(10) << p->code_lines << std::setw(12)
              << p->instructions << std::setw(14) << std::fixed
              << std::setprecision(2) << best / 1e6 << std::setw(14)
              << std::setprecision(1)
              << best / static_cast<double>(p->instructions) << '\n';
  }
  std::cout << "\nShape to check: ns/instr roughly flat (near-linear "
               "analysis), keeping compile\noverhead bounded on large "
               "codes.\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("StaticScaling/hera", bench_analysis)
      ->Arg(2)
      ->Arg(8)
      ->Arg(32)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
