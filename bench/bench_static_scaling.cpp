// Static-analysis scalability: analysis cost versus program size, swept over
// HERA skeleton scale (packages x kernels). Verifies the analyses stay
// near-linear in IR size — the property that keeps Figure-1 overheads small
// on large codes (HERA is "a large multi-physics platform" in the paper).
#include "core/algorithm1.h"
#include "core/phases.h"
#include "core/summaries.h"
#include "frontend/lowering.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "support/interner.h"
#include "support/str.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <iomanip>
#include <iostream>
#include <map>

namespace {

using namespace parcoach;

struct Prepared {
  SourceManager sm;
  std::unique_ptr<ir::Module> mod;
  size_t instructions = 0;
  size_t code_lines = 0;
};

std::unique_ptr<Prepared> prepare(int32_t packages) {
  workloads::HeraParams params;
  params.packages = packages;
  params.kernels = 8;
  const auto g = workloads::make_hera(params);
  auto p = std::make_unique<Prepared>();
  DiagnosticEngine diags;
  auto prog = frontend::Parser::parse_source(p->sm, g.name, g.source, diags);
  frontend::Sema::analyze(prog, diags);
  p->mod = frontend::Lowering::lower(prog, diags);
  if (diags.has_errors()) std::abort();
  p->instructions = p->mod->num_instructions();
  p->code_lines = g.code_lines;
  return p;
}

double full_analysis_ns(const ir::Module& mod) {
  DiagnosticEngine diags;
  const auto start = std::chrono::steady_clock::now();
  const auto sums = core::Summaries::build(mod);
  const auto phases = core::run_phases(mod, sums, {}, diags);
  const auto alg1 = core::run_algorithm1(mod, sums, {}, diags);
  benchmark::DoNotOptimize(phases.multithreaded.size() + alg1.divergences.size());
  return static_cast<double>(
      (std::chrono::steady_clock::now() - start).count());
}

void bench_analysis(benchmark::State& state) {
  const auto p = prepare(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    const double ns = full_analysis_ns(*p->mod);
    state.SetIterationTime(ns / 1e9);
  }
  state.counters["instructions"] =
      benchmark::Counter(static_cast<double>(p->instructions));
  state.counters["ns_per_instr"] = benchmark::Counter(
      full_analysis_ns(*p->mod) / static_cast<double>(p->instructions));
}

// ---- Label keying: strings vs interned ids ----------------------------------
// Algorithm 1 keys its per-label maps on collective labels
// ("MPI_Allreduce@c", "call mpi_phase()", ...) and the balanced-branch
// refinement compares whole per-path label *sequences*. The old scheme keyed
// and compared concatenated strings; the analysis now interns each label
// once and works with dense int32 ids afterwards. This pair models one
// analysis pass over the module's label occurrences: group the seeds, then
// run the PDF+ loop's repeated per-(conditional, label) set probes and the
// sequence-solver's per-path sequence equality — the id scheme pays one
// string hash per occurrence up front and integer compares everywhere else.

std::vector<std::string> collect_labels(const ir::Module& mod) {
  std::vector<std::string> labels;
  for (const auto& fn : mod.functions()) {
    for (const auto& bb : fn->blocks()) {
      for (const auto& in : bb.instrs) {
        if (in.op == ir::Opcode::CollComm && ir::is_matched(in.collective)) {
          std::string l(ir::to_string(in.collective));
          if (in.comm) l += str::cat("@", ir::to_string(*in.comm));
          labels.push_back(std::move(l));
        } else if (in.op == ir::Opcode::Call) {
          labels.push_back(str::cat("call ", in.callee, "()"));
        }
      }
    }
  }
  return labels;
}

void bench_label_keying(benchmark::State& state, bool interned) {
  const auto p = prepare(16);
  const auto labels = collect_labels(*p->mod);
  // Realistic shape per pass: every PDF+ conditional probes the reported-set
  // per seed label several times, and every block pair in the sequence
  // solver compares label sequences of a few elements.
  constexpr int kProbesPerLabel = 16;
  constexpr size_t kSeqLen = 4;
  for (auto _ : state) {
    size_t checksum = 0;
    if (interned) {
      Interner in;
      std::vector<int32_t> ids;
      ids.reserve(labels.size());
      std::map<int32_t, int32_t> seeds;
      for (const auto& l : labels) {
        const int32_t id = in.intern(l);
        ids.push_back(id);
        ++seeds[id];
      }
      std::set<std::pair<int32_t, int32_t>> reported;
      for (int probe = 0; probe < kProbesPerLabel; ++probe)
        for (int32_t id : ids) checksum += reported.emplace(probe, id).second;
      for (size_t i = 0; i + 2 * kSeqLen <= ids.size(); i += kSeqLen) {
        const std::vector<int32_t> a(ids.begin() + i, ids.begin() + i + kSeqLen);
        const std::vector<int32_t> b(ids.begin() + i + kSeqLen,
                                     ids.begin() + i + 2 * kSeqLen);
        checksum += a == b;
      }
      checksum += seeds.size();
    } else {
      std::map<std::string, int32_t> seeds;
      for (const auto& l : labels) ++seeds[l];
      std::set<std::pair<int32_t, std::string>> reported;
      for (int probe = 0; probe < kProbesPerLabel; ++probe)
        for (const auto& l : labels)
          checksum += reported.emplace(probe, l).second;
      for (size_t i = 0; i + 2 * kSeqLen <= labels.size(); i += kSeqLen) {
        std::string a, b;
        for (size_t k = 0; k < kSeqLen; ++k) {
          a += labels[i + k];
          a += ';';
          b += labels[i + kSeqLen + k];
          b += ';';
        }
        checksum += a == b;
      }
      checksum += seeds.size();
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["labels"] = benchmark::Counter(static_cast<double>(labels.size()));
}

void print_summary() {
  std::cout << "\n=== Analysis scaling over HERA skeleton size ===\n\n"
            << std::left << std::setw(10) << "packages" << std::right
            << std::setw(10) << "lines" << std::setw(12) << "instrs"
            << std::setw(14) << "analysis ms" << std::setw(14) << "ns/instr"
            << '\n';
  for (int32_t packages : {2, 4, 8, 16, 32}) {
    const auto p = prepare(packages);
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep)
      best = std::min(best, full_analysis_ns(*p->mod));
    std::cout << std::left << std::setw(10) << packages << std::right
              << std::setw(10) << p->code_lines << std::setw(12)
              << p->instructions << std::setw(14) << std::fixed
              << std::setprecision(2) << best / 1e6 << std::setw(14)
              << std::setprecision(1)
              << best / static_cast<double>(p->instructions) << '\n';
  }
  {
    // Label-interning census on the largest skeleton: the per-class maps key
    // on this many dense ids instead of concatenated strings.
    const auto p = prepare(32);
    DiagnosticEngine diags;
    const auto sums = core::Summaries::build(*p->mod);
    const auto alg1 = core::run_algorithm1(*p->mod, sums, {}, diags);
    std::cout << "\nlabel interner: " << alg1.labels_interned
              << " distinct labels across " << collect_labels(*p->mod).size()
              << " label occurrences (seed grouping and balanced-sequence "
                 "matching compare int32 ids,\nnot strings — see "
                 "StaticScaling/label_keying/*)\n";
  }
  std::cout << "\nShape to check: ns/instr roughly flat (near-linear "
               "analysis), keeping compile\noverhead bounded on large "
               "codes.\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("StaticScaling/hera", bench_analysis)
      ->Arg(2)
      ->Arg(8)
      ->Arg(32)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  benchmark::RegisterBenchmark("StaticScaling/label_keying/strings",
                               [](benchmark::State& st) {
                                 bench_label_keying(st, false);
                               })
      ->Unit(benchmark::kMicrosecond)
      ->MinTime(0.05);
  benchmark::RegisterBenchmark("StaticScaling/label_keying/interned",
                               [](benchmark::State& st) {
                                 bench_label_keying(st, true);
                               })
      ->Unit(benchmark::kMicrosecond)
      ->MinTime(0.05);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
