// Execution engines head-to-head: the AST tree-walker vs the bytecode VM.
//
// The dynamic side of the validator only pays off if instrumented execution
// is fast enough for real workloads; after PR 2 (piggybacked CC) and PR 4
// (zero-overhead unarmed comms) the dominant cost is the interpreter itself.
// This bench pits the two engines against each other on:
//
//   corpus_interp_bound  an arithmetic/control-heavy kernel (1 rank, 1
//                        thread, MPI only at the edges): pure interpreter
//                        throughput, reported as ns/statement — the
//                        bytecode engine's pre-resolved slots must beat the
//                        tree-walker's scope-chain hash lookups by >= 3x;
//   corpus_clean_sweep   every Clean corpus entry executed end-to-end under
//                        its selective plan (the integration-suite shape);
//   npb_bt_mz / epcc     the Figure-1 workload generators at bench scale,
//                        reported as collectives/sec (MPI-bound, so the
//                        expected win is smaller but must not regress).
//
// Flags (accepted before the google-benchmark flags):
//   --json=PATH   machine-readable results (BENCH_interp.json in CI)
//   --smoke       fewer repetitions, skip registered benchmarks (CI smoke)
//   --opmix       run the scenarios once with opcode-mix profiling and print
//                 the retire histogram (vm.op.* counters) instead of timing;
//                 this is the workflow that picks fusion candidates
#include "driver/pipeline.h"
#include "interp/executor.h"
#include "support/json_writer.h"
#include "support/metrics.h"
#include "support/str.h"
#include "workloads/corpus.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>

namespace {

using namespace parcoach;

constexpr interp::Engine kEngines[] = {interp::Engine::Ast,
                                       interp::Engine::Bytecode};

// ---- Scenario programs --------------------------------------------------------

/// Arithmetic/control-heavy kernel. Statements executed per outer iteration
/// (exec_stmt invocations in the AST engine): var t, t=, if, branch assign,
/// var j, while entry, 4 * (2 body stmts), acc= -> ~15; used as the common
/// ns/statement denominator for both engines.
constexpr int kStmtsPerIter = 15;

std::string interp_bound_source(int64_t iters) {
  return str::cat(R"(func kernel(n) {
  var acc = 0;
  for (i = 0 to n) {
    var t = i * 3 + acc;
    t = t % 1009;
    if (t % 2 == 0) {
      acc = acc + t;
    } else {
      acc = acc - t / 2;
    }
    var j = 0;
    while (j < 4) {
      acc = acc + j * i;
      j = j + 1;
    }
    acc = acc % 100003;
  }
  return acc;
}
func main() {
  mpi_init(single);
  var r = kernel()", iters, R"();
  var s = mpi_allreduce(r, sum);
  print(s);
  mpi_finalize();
}
)");
}

struct Compiled {
  SourceManager sm;
  driver::CompileResult result;
};

std::unique_ptr<Compiled> compile_one(const std::string& name,
                                      const std::string& source) {
  auto c = std::make_unique<Compiled>();
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  opts.algorithm1.rank_taint_filter = true;
  c->result = driver::compile(c->sm, name, source, diags, opts);
  if (!c->result.ok) {
    std::cerr << "compile failed: " << name << "\n" << diags.to_text(c->sm);
    std::abort();
  }
  return c;
}

struct RunStats {
  double wall_ns = 0;
  uint64_t app_slots = 0;
  uint64_t steps = 0;
  uint64_t bytecode_ops = 0;
};

RunStats run_once(const Compiled& c, interp::Engine engine, int32_t ranks,
                  int32_t threads, uint64_t max_steps = 200'000'000) {
  interp::Executor exec(c.result.program, c.sm, &c.result.plan);
  interp::ExecOptions eopts;
  eopts.engine = engine;
  eopts.num_ranks = ranks;
  eopts.num_threads = threads;
  eopts.max_steps = max_steps;
  eopts.mpi.hang_timeout = std::chrono::milliseconds(10000);
  const auto start = std::chrono::steady_clock::now();
  const auto result = exec.run(eopts);
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!result.clean) {
    std::cerr << "bench run not clean: " << result.mpi.abort_reason << "\n"
              << result.mpi.deadlock_details;
    std::abort();
  }
  RunStats s;
  s.wall_ns = static_cast<double>(ns.count());
  s.app_slots = result.mpi.app_slots_completed;
  s.steps = result.steps_executed;
  s.bytecode_ops = result.mpi.bytecode_ops;
  return s;
}

// ---- Scenario harness ---------------------------------------------------------

struct EngineResult {
  double wall_ms = 0;        // best of reps
  double ns_per_stmt = 0;    // interp-bound scenarios
  double ns_per_coll = 0;    // collective scenarios
  double colls_per_sec = 0;
  uint64_t bytecode_ops = 0;
};

struct ScenarioResult {
  std::string name;
  std::string kind; // "ns_per_stmt" | "collectives_per_sec" | "wall_ms"
  uint64_t work_stmts = 0;
  EngineResult engines[2]; // indexed by Engine
  [[nodiscard]] double speedup() const {
    const double a = engines[0].wall_ms, b = engines[1].wall_ms;
    return b > 0 ? a / b : 0;
  }
};

ScenarioResult measure_interp_bound(int reps, int64_t iters) {
  const auto c = compile_one("corpus_interp_bound", interp_bound_source(iters));
  ScenarioResult sr;
  sr.name = "corpus_interp_bound";
  sr.kind = "ns_per_stmt";
  sr.work_stmts = static_cast<uint64_t>(iters) * kStmtsPerIter;
  for (size_t e = 0; e < 2; ++e) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto s = run_once(*c, kEngines[e], 1, 1);
      best = std::min(best, s.wall_ns);
      sr.engines[e].bytecode_ops = s.bytecode_ops;
    }
    sr.engines[e].wall_ms = best / 1e6;
    sr.engines[e].ns_per_stmt = best / static_cast<double>(sr.work_stmts);
  }
  return sr;
}

ScenarioResult measure_corpus_sweep(int reps) {
  // Compile every deterministic Clean entry once; time the full sweep.
  std::vector<std::unique_ptr<Compiled>> cases;
  std::vector<std::pair<int32_t, int32_t>> shapes;
  for (const auto& e : workloads::corpus()) {
    if (e.dynamic != workloads::DynamicOutcome::Clean) continue;
    cases.push_back(compile_one(e.name, e.source));
    shapes.emplace_back(e.ranks, e.threads);
  }
  ScenarioResult sr;
  sr.name = "corpus_clean_sweep";
  sr.kind = "wall_ms";
  for (size_t e = 0; e < 2; ++e) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < cases.size(); ++i)
        run_once(*cases[i], kEngines[e], shapes[i].first, shapes[i].second);
      const auto ns = std::chrono::steady_clock::now() - start;
      best = std::min(best, static_cast<double>(ns.count()));
    }
    sr.engines[e].wall_ms = best / 1e6;
  }
  return sr;
}

ScenarioResult measure_workload(const std::string& name,
                                const workloads::GeneratedProgram& g,
                                int reps, int32_t ranks, int32_t threads) {
  const auto c = compile_one(g.name, g.source);
  ScenarioResult sr;
  sr.name = name;
  sr.kind = "collectives_per_sec";
  for (size_t e = 0; e < 2; ++e) {
    double best = 1e300;
    uint64_t slots = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto s = run_once(*c, kEngines[e], ranks, threads);
      best = std::min(best, s.wall_ns);
      slots = s.app_slots;
      sr.engines[e].bytecode_ops = s.bytecode_ops;
    }
    sr.engines[e].wall_ms = best / 1e6;
    if (slots > 0) {
      sr.engines[e].ns_per_coll = best / static_cast<double>(slots);
      sr.engines[e].colls_per_sec = 1e9 / sr.engines[e].ns_per_coll;
    }
  }
  return sr;
}

std::vector<ScenarioResult> measure_all(bool smoke) {
  const int reps = smoke ? 3 : 5;
  std::vector<ScenarioResult> out;
  out.push_back(measure_interp_bound(reps, smoke ? 60'000 : 200'000));
  out.push_back(measure_corpus_sweep(smoke ? 1 : 3));
  workloads::NpbParams np;
  np.zones = 4;
  np.steps = 2;
  np.threads = 2;
  np.stages = 2;
  out.push_back(measure_workload(
      "npb_bt_mz", workloads::make_npb_mz(workloads::NpbVariant::BT, np),
      reps, 2, 2));
  workloads::EpccParams ep;
  ep.reps = smoke ? 3 : 6;
  ep.threads = 2;
  ep.data_sizes = 4;
  out.push_back(
      measure_workload("epcc", workloads::make_epcc_suite(ep), reps, 2, 2));
  return out;
}

// ---- Output -------------------------------------------------------------------

void print_table(const std::vector<ScenarioResult>& results) {
  std::cout << "\n=== Execution engines: AST tree-walker vs bytecode VM ===\n\n"
            << std::left << std::setw(24) << "scenario" << std::right
            << std::setw(14) << "ast ms" << std::setw(14) << "bytecode ms"
            << std::setw(10) << "speedup" << std::setw(16) << "ast ns/stmt"
            << std::setw(14) << "bc ns/stmt" << '\n';
  for (const auto& sr : results) {
    std::cout << std::left << std::setw(24) << sr.name << std::right
              << std::fixed << std::setprecision(2) << std::setw(14)
              << sr.engines[0].wall_ms << std::setw(14)
              << sr.engines[1].wall_ms << std::setw(9)
              << std::setprecision(2) << sr.speedup() << 'x';
    if (sr.kind == "ns_per_stmt")
      std::cout << std::setw(16) << std::setprecision(1)
                << sr.engines[0].ns_per_stmt << std::setw(14)
                << sr.engines[1].ns_per_stmt;
    std::cout << '\n';
  }
  std::cout << "\nShape to check: corpus_interp_bound is pure interpreter "
               "work, so the bytecode VM's\npre-resolved slots and flat "
               "dispatch should win >= 3x; the MPI-bound workloads are\n"
               "dominated by slot matching, so their win is smaller but must "
               "never dip below 1x.\n";
}

void write_json(const std::string& path,
                const std::vector<ScenarioResult>& results) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  JsonWriter w(os);
  w.begin_object();
  w.key("engines");
  w.begin_array();
  w.value("ast");
  w.value("bytecode");
  w.end_array();
  w.key("scenarios");
  w.begin_array();
  for (const auto& sr : results) {
    w.begin_object();
    w.kv("scenario", sr.name);
    w.kv("kind", sr.kind);
    if (sr.work_stmts > 0) w.kv("stmts", sr.work_stmts);
    for (size_t e = 0; e < 2; ++e) {
      const auto& er = sr.engines[e];
      w.key(e == 0 ? "ast" : "bytecode");
      w.begin_object();
      w.kv("wall_ms", er.wall_ms, 3);
      if (sr.kind == "ns_per_stmt") w.kv("ns_per_stmt", er.ns_per_stmt, 2);
      if (sr.kind == "collectives_per_sec") {
        w.kv("ns_per_collective", er.ns_per_coll, 1);
        w.kv("collectives_per_sec", er.colls_per_sec, 0);
      }
      if (e == 1 && er.bytecode_ops > 0) w.kv("bytecode_ops", er.bytecode_ops);
      w.end_object();
    }
    w.kv("speedup", sr.speedup(), 3);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "wrote " << path << "\n";
}

// ---- Opcode-mix profiling (--opmix) -------------------------------------------

/// Runs one scenario under the bytecode engine with vm.op.* profiling on and
/// prints the retire histogram, highest share first. This is the loop that
/// drives superinstruction selection: a hot Load/Const/compare shape at the
/// top of this table is the next fusion candidate in bc_passes.cpp.
void profile_opmix(const std::string& name, const Compiled& c, int32_t ranks,
                   int32_t threads) {
  interp::Executor exec(c.result.program, c.sm, &c.result.plan);
  interp::ExecOptions eopts;
  eopts.engine = interp::Engine::Bytecode;
  eopts.num_ranks = ranks;
  eopts.num_threads = threads;
  eopts.max_steps = 200'000'000;
  eopts.mpi.hang_timeout = std::chrono::milliseconds(10000);
  eopts.opmix = true;
  MetricsRegistry metrics;
  eopts.metrics = &metrics;
  const auto result = exec.run(eopts);
  if (!result.clean) {
    std::cerr << "opmix run not clean: " << result.mpi.abort_reason << "\n";
    std::abort();
  }
  std::vector<std::pair<std::string, uint64_t>> ops;
  uint64_t total = 0;
  for (const auto& s : metrics.snapshot()) {
    if (s.name.rfind("vm.op.", 0) != 0) continue;
    ops.emplace_back(s.name.substr(6), s.value);
    total += s.value;
  }
  std::sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::cout << "\n--- opcode mix: " << name << " (" << total
            << " instructions retired) ---\n";
  for (const auto& [op, n] : ops)
    std::cout << "  " << std::left << std::setw(14) << op << std::right
              << std::setw(12) << n << std::setw(7) << std::fixed
              << std::setprecision(1)
              << 100.0 * static_cast<double>(n) / static_cast<double>(total)
              << "%\n";
}

void run_opmix() {
  {
    const auto c =
        compile_one("corpus_interp_bound", interp_bound_source(60'000));
    profile_opmix("corpus_interp_bound", *c, 1, 1);
  }
  {
    workloads::NpbParams np;
    np.zones = 4;
    np.steps = 2;
    np.threads = 2;
    np.stages = 2;
    const auto g = workloads::make_npb_mz(workloads::NpbVariant::BT, np);
    const auto c = compile_one(g.name, g.source);
    profile_opmix("npb_bt_mz", *c, 2, 2);
  }
}

void bench_engine(benchmark::State& state, interp::Engine engine) {
  const auto c = compile_one("interp_bound", interp_bound_source(20'000));
  for (auto _ : state) {
    const auto s = run_once(*c, engine, 1, 1);
    benchmark::DoNotOptimize(s.wall_ns);
  }
  state.SetItemsProcessed(state.iterations() * 20'000 * kStmtsPerIter);
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  bool opmix = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--opmix") {
      opmix = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (opmix) {
    run_opmix();
    return 0;
  }

  if (!smoke) {
    benchmark::RegisterBenchmark("InterpEngine/interp_bound/ast",
                                 [](benchmark::State& st) {
                                   bench_engine(st, interp::Engine::Ast);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
    benchmark::RegisterBenchmark("InterpEngine/interp_bound/bytecode",
                                 [](benchmark::State& st) {
                                   bench_engine(st, interp::Engine::Bytecode);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const auto results = measure_all(smoke);
  print_table(results);
  if (!json_path.empty()) write_json(json_path, results);
  return 0;
}
