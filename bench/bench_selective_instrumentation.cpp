// Ablation A — selective vs blanket instrumentation.
//
// The paper's selective instrumentation only inserts checks where the static
// analysis could not prove correctness. This bench quantifies the win on the
// static side (checks inserted across the corpus and the Figure-1 suites)
// and times plan construction + IR materialization.
#include "core/instrumentation.h"
#include "core/summaries.h"
#include "driver/pipeline.h"
#include "workloads/corpus.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

struct Row {
  std::string name;
  size_t collective_sites = 0;
  size_t selective_checks = 0;
  size_t blanket_checks = 0;
  bool has_warnings = false;
};

Row measure(const std::string& name, const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  const auto r = driver::compile(sm, name, source, diags, opts);
  if (!r.ok) std::abort();
  Row row;
  row.name = name;
  row.collective_sites = r.plan.total_collective_sites;
  row.selective_checks = r.plan.check_count();
  row.blanket_checks = core::make_blanket_plan(*r.module).check_count();
  row.has_warnings = diags.size() > 0;
  return row;
}

void bench_plan_and_apply(benchmark::State& state, bool blanket) {
  const auto& g = workloads::figure1_suite()[4]; // HERA, the largest
  SourceManager sm;
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::Warnings;
  auto compiled = driver::compile(sm, g.name, g.source, diags, opts);
  if (!compiled.ok) std::abort();
  for (auto _ : state) {
    state.PauseTiming();
    // Work on a fresh clone of the module each iteration (apply mutates).
    DiagnosticEngine d2;
    driver::PipelineOptions o2;
    o2.mode = driver::Mode::Warnings;
    auto fresh = driver::compile(sm, g.name, g.source, d2, o2);
    state.ResumeTiming();
    const auto plan = blanket
                          ? core::make_blanket_plan(*fresh.module)
                          : core::make_plan(*fresh.module, fresh.phases,
                                            fresh.algorithm1);
    const size_t inserted = core::apply_plan(*fresh.module, plan);
    benchmark::DoNotOptimize(inserted);
  }
}

void print_table() {
  std::vector<Row> rows;
  for (const auto& e : workloads::corpus()) rows.push_back(measure(e.name, e.source));
  for (const auto& g : workloads::figure1_suite())
    rows.push_back(measure(g.name, g.source));

  std::cout << "\n=== Ablation A: selective vs blanket instrumentation ===\n\n"
            << std::left << std::setw(34) << "program" << std::right
            << std::setw(8) << "sites" << std::setw(12) << "selective"
            << std::setw(10) << "blanket" << std::setw(12) << "saved %"
            << '\n';
  size_t tot_sel = 0, tot_blk = 0;
  for (const auto& r : rows) {
    const double saved =
        r.blanket_checks == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(r.selective_checks) /
                                 static_cast<double>(r.blanket_checks));
    tot_sel += r.selective_checks;
    tot_blk += r.blanket_checks;
    std::cout << std::left << std::setw(34) << r.name << std::right
              << std::setw(8) << r.collective_sites << std::setw(12)
              << r.selective_checks << std::setw(10) << r.blanket_checks
              << std::setw(11) << std::fixed << std::setprecision(1) << saved
              << '%' << '\n';
  }
  std::cout << std::left << std::setw(34) << "TOTAL" << std::right
            << std::setw(8) << ' ' << std::setw(12) << tot_sel << std::setw(10)
            << tot_blk << std::setw(11) << std::fixed << std::setprecision(1)
            << (tot_blk ? 100.0 * (1.0 - static_cast<double>(tot_sel) /
                                            static_cast<double>(tot_blk))
                        : 0.0)
            << '%' << '\n';
  std::cout << "\nClean programs (the suites, clean_* corpus entries) get "
               "zero checks; only programs\nwith potential errors pay for "
               "verification. Buggy programs still check fewer sites\nthan "
               "blanket when phase-1/2 findings are localized.\n";
}

} // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("Selective/plan+apply/hera/selective",
                               [](benchmark::State& st) {
                                 bench_plan_and_apply(st, false);
                               })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.05);
  benchmark::RegisterBenchmark("Selective/plan+apply/hera/blanket",
                               [](benchmark::State& st) {
                                 bench_plan_and_apply(st, true);
                               })
      ->Unit(benchmark::kMillisecond)
      ->MinTime(0.05);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table();
  return 0;
}
