// Ablation A — selective vs blanket instrumentation, now per comm class.
//
// The paper's selective instrumentation only inserts checks where the static
// analysis could not prove correctness. This bench quantifies the win on two
// axes:
//   static   checks inserted across the corpus and the Figure-1 suites
//            (selective vs blanket), and plan construction + materialization
//            cost;
//   dynamic  the comm-class arming matrix: scenarios where a *clean*
//            communicator (world, or N clean subcomms) does the hot-loop
//            work while a *dirty* communicator is statically flagged. The
//            clean comm runs the unarmed zero-overhead path — no CC lane,
//            no id bookkeeping — so its ns/collective must sit on top of the
//            uninstrumented baseline while the dirty comm stays fully
//            checked. Program-wide arming (the pre-matrix behaviour) is the
//            comparison upper bound.
//
// Flags (accepted before the google-benchmark flags):
//   --json=PATH   write machine-readable results (BENCH_selective.json in
//                 CI): per scenario the site/class census, armed vs skipped
//                 sites, and ns/collective per arming level.
//   --smoke       skip the registered google-benchmark runs; produce the
//                 summary/JSON from fewer repetitions (CI smoke step).
#include "core/instrumentation.h"
#include "core/summaries.h"
#include "driver/pipeline.h"
#include "interp/executor.h"
#include "support/json_writer.h"
#include "support/str.h"
#include "workloads/corpus.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

// ---- Static census (selective vs blanket) -----------------------------------

struct Row {
  std::string name;
  size_t collective_sites = 0;
  size_t selective_checks = 0;
  size_t blanket_checks = 0;
  bool has_warnings = false;
};

Row measure(const std::string& name, const std::string& source) {
  SourceManager sm;
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  const auto r = driver::compile(sm, name, source, diags, opts);
  if (!r.ok) std::abort();
  Row row;
  row.name = name;
  row.collective_sites = r.plan.total_collective_sites;
  row.selective_checks = r.plan.check_count();
  row.blanket_checks = core::make_blanket_plan(*r.module).check_count();
  row.has_warnings = diags.size() > 0;
  return row;
}

void bench_plan_and_apply(benchmark::State& state, bool blanket) {
  const auto& g = workloads::figure1_suite()[4]; // HERA, the largest
  SourceManager sm;
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::Warnings;
  auto compiled = driver::compile(sm, g.name, g.source, diags, opts);
  if (!compiled.ok) std::abort();
  for (auto _ : state) {
    state.PauseTiming();
    // Work on a fresh clone of the module each iteration (apply mutates).
    DiagnosticEngine d2;
    driver::PipelineOptions o2;
    o2.mode = driver::Mode::Warnings;
    auto fresh = driver::compile(sm, g.name, g.source, d2, o2);
    state.ResumeTiming();
    const auto plan = blanket
                          ? core::make_blanket_plan(*fresh.module)
                          : core::make_plan(*fresh.module, fresh.phases,
                                            fresh.algorithm1);
    const size_t inserted = core::apply_plan(*fresh.module, plan);
    benchmark::DoNotOptimize(inserted);
  }
}

// ---- Dynamic comm scenarios (the arming matrix at runtime) ------------------
//
// Each scenario has a "dirty" communicator: a rank-dependent conditional
// whose branches run the SAME sequence on it, so Algorithm 1 flags the class
// (match_sequences is off, like the original tool) but the program runs
// clean — the armed comm is fully checked on every iteration while the
// clean comms never touch the CC lane. The hot loop is on the clean
// comm(s); its bound is rank-uniform, so the rank-taint refinement keeps
// the clean classes unarmed (without it, Algorithm 1 conservatively flags
// every loop-carried collective — the bench_runtime_overhead story).

struct Scenario {
  const char* name;
  std::string source;
};

std::vector<Scenario> scenarios(int reps) {
  const std::string dirty_subcomm =
      "  if (rank() >= 0) {\n"
      "    x = mpi_allreduce(x, sum, d);\n"
      "  } else {\n"
      "    x = mpi_allreduce(x, sum, d);\n"
      "  }\n";
  return {
      {"clean_world+dirty_subcomm",
       str::cat("func main() {\n  mpi_init(single);\n"
                "  var d = mpi_comm_dup();\n  var x = rank() + 1;\n",
                dirty_subcomm,
                "  for (r = 0 to ", reps, ") {\n"
                "    x = mpi_allreduce(x, sum);\n"
                "  }\n"
                "  mpi_comm_free(d);\n  mpi_finalize();\n}\n")},
      {"3_clean_subcomms+1_dirty",
       str::cat("func main() {\n  mpi_init(single);\n"
                "  var a = mpi_comm_dup();\n  var b = mpi_comm_dup();\n"
                "  var c = mpi_comm_dup();\n  var d = mpi_comm_dup();\n"
                "  var x = rank() + 1;\n",
                dirty_subcomm,
                "  for (r = 0 to ", reps, ") {\n"
                "    x = mpi_allreduce(x, sum, a);\n"
                "    x = mpi_allreduce(x, sum, b);\n"
                "    x = mpi_allreduce(x, sum, c);\n"
                "  }\n"
                "  mpi_comm_free(a);\n  mpi_comm_free(b);\n"
                "  mpi_comm_free(c);\n  mpi_comm_free(d);\n"
                "  mpi_finalize();\n}\n")},
  };
}

enum class Level { None, Selective, ProgramWide };
constexpr const char* kLevelNames[] = {"none", "selective", "programwide"};

struct CompiledScenario {
  SourceManager sm;
  driver::CompileResult result;
  core::InstrumentationPlan programwide;
};

std::unique_ptr<CompiledScenario> compile_scenario(const Scenario& s) {
  auto c = std::make_unique<CompiledScenario>();
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  opts.algorithm1.rank_taint_filter = true; // keep clean loop classes clean
  c->result = driver::compile(c->sm, s.name, s.source, diags, opts);
  if (!c->result.ok) std::abort();
  c->programwide = core::make_programwide_plan(*c->result.module,
                                               c->result.phases,
                                               c->result.algorithm1);
  return c;
}

struct RunStats {
  double ns = 0;
  double ns_per_coll = 0;
  uint64_t cc_rounds = 0;
};

RunStats run_once(const CompiledScenario& c, Level level) {
  const core::InstrumentationPlan* plan = nullptr;
  if (level == Level::Selective) plan = &c.result.plan;
  if (level == Level::ProgramWide) plan = &c.programwide;
  interp::Executor exec(c.result.program, c.sm, plan);
  interp::ExecOptions eopts;
  eopts.num_ranks = 2;
  eopts.num_threads = 1;
  eopts.mpi.hang_timeout = std::chrono::milliseconds(5000);
  const auto start = std::chrono::steady_clock::now();
  const auto result = exec.run(eopts);
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!result.clean) std::abort();
  RunStats s;
  s.ns = static_cast<double>(ns.count());
  if (result.mpi.app_slots_completed > 0)
    s.ns_per_coll = s.ns / static_cast<double>(result.mpi.app_slots_completed);
  s.cc_rounds = result.mpi.cc_piggybacked;
  return s;
}

struct LevelResult {
  double ns_per_coll = 0; // best-of-reps
  double overhead = 0;    // vs `none`, fractional
  uint64_t cc_rounds = 0;
};

struct ScenarioResult {
  std::string name;
  size_t sites = 0;
  size_t sites_armed = 0;
  size_t classes_total = 0;
  size_t classes_armed = 0;
  LevelResult levels[3]; // indexed by Level
};

std::vector<ScenarioResult> measure_scenarios(int reps_outer, int loop_reps) {
  std::vector<ScenarioResult> out;
  for (const auto& s : scenarios(loop_reps)) {
    const auto c = compile_scenario(s);
    ScenarioResult sr;
    sr.name = s.name;
    sr.sites = c->result.plan.total_collective_sites;
    sr.sites_armed = c->result.plan.cc_stmts.size();
    sr.classes_total = c->result.plan.total_cc_classes;
    sr.classes_armed = c->result.plan.cc_classes.size();
    double best[3] = {1e30, 1e30, 1e30};
    for (int rep = 0; rep < reps_outer; ++rep) {
      for (size_t l = 0; l < 3; ++l) {
        const auto stats = run_once(*c, static_cast<Level>(l));
        best[l] = std::min(best[l], stats.ns_per_coll);
        sr.levels[l].cc_rounds = stats.cc_rounds;
      }
    }
    for (size_t l = 0; l < 3; ++l) sr.levels[l].ns_per_coll = best[l];
    for (size_t l = 0; l < 3; ++l)
      sr.levels[l].overhead = best[l] / best[0] - 1.0;
    out.push_back(std::move(sr));
  }
  return out;
}

void print_static_table() {
  std::vector<Row> rows;
  for (const auto& e : workloads::corpus()) rows.push_back(measure(e.name, e.source));
  for (const auto& g : workloads::figure1_suite())
    rows.push_back(measure(g.name, g.source));

  std::cout << "\n=== Ablation A: selective vs blanket instrumentation ===\n\n"
            << std::left << std::setw(34) << "program" << std::right
            << std::setw(8) << "sites" << std::setw(12) << "selective"
            << std::setw(10) << "blanket" << std::setw(12) << "saved %"
            << '\n';
  size_t tot_sel = 0, tot_blk = 0;
  for (const auto& r : rows) {
    const double saved =
        r.blanket_checks == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(r.selective_checks) /
                                 static_cast<double>(r.blanket_checks));
    tot_sel += r.selective_checks;
    tot_blk += r.blanket_checks;
    std::cout << std::left << std::setw(34) << r.name << std::right
              << std::setw(8) << r.collective_sites << std::setw(12)
              << r.selective_checks << std::setw(10) << r.blanket_checks
              << std::setw(11) << std::fixed << std::setprecision(1) << saved
              << '%' << '\n';
  }
  std::cout << std::left << std::setw(34) << "TOTAL" << std::right
            << std::setw(8) << ' ' << std::setw(12) << tot_sel << std::setw(10)
            << tot_blk << std::setw(11) << std::fixed << std::setprecision(1)
            << (tot_blk ? 100.0 * (1.0 - static_cast<double>(tot_sel) /
                                            static_cast<double>(tot_blk))
                        : 0.0)
            << '%' << '\n';
  std::cout << "\nClean programs (the suites, clean_* corpus entries) get "
               "zero checks; only programs\nwith potential errors pay for "
               "verification. Buggy programs still check fewer sites\nthan "
               "blanket when phase-1/2 findings are localized.\n";
}

void print_scenarios(const std::vector<ScenarioResult>& results, int reps) {
  std::cout << "\n=== Comm-class arming matrix (2 ranks, best of " << reps
            << " runs) ===\n\n"
            << std::left << std::setw(28) << "scenario" << std::right
            << std::setw(7) << "sites" << std::setw(7) << "armed"
            << std::setw(9) << "classes" << std::setw(13) << "none ns/c"
            << std::setw(14) << "selective %" << std::setw(15)
            << "programwide %" << std::setw(9) << "cc(sel)" << '\n';
  for (const auto& sr : results) {
    std::cout << std::left << std::setw(28) << sr.name << std::right
              << std::setw(7) << sr.sites << std::setw(7) << sr.sites_armed
              << std::setw(6) << sr.classes_armed << '/' << sr.classes_total
              << std::setw(13) << std::fixed << std::setprecision(0)
              << sr.levels[0].ns_per_coll << std::setw(13)
              << std::setprecision(1) << 100.0 * sr.levels[1].overhead << '%'
              << std::setw(14) << 100.0 * sr.levels[2].overhead << '%'
              << std::setw(9) << sr.levels[1].cc_rounds << '\n';
  }
  std::cout << "\nShape to check: the clean comms carry the hot loop, so "
               "selective ns/collective sits\non the uninstrumented baseline "
               "(the unarmed path has no CC lane at all) while the\ndirty "
               "comm still runs every check (cc(sel) > 0); program-wide "
               "arming pays the CC\nlane on every collective of every "
               "comm.\n";
}

void write_json(const std::string& path, const std::vector<ScenarioResult>& results) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("arming", "per_comm_class");
  w.kv("engine", to_string(interp::ExecOptions{}.engine));
  w.key("scenarios");
  w.begin_array();
  for (const auto& sr : results) {
    w.begin_object();
    w.kv("scenario", sr.name);
    w.kv("sites", sr.sites);
    w.kv("sites_armed", sr.sites_armed);
    w.kv("sites_skipped", sr.sites - sr.sites_armed);
    w.kv("classes_total", sr.classes_total);
    w.kv("classes_armed", sr.classes_armed);
    w.key("levels");
    w.begin_object();
    for (size_t l = 0; l < 3; ++l) {
      const auto& lv = sr.levels[l];
      w.key(kLevelNames[l]);
      w.begin_object();
      w.kv("ns_per_collective", lv.ns_per_coll, 1);
      w.kv("overhead_vs_none", lv.overhead, 4);
      w.kv("cc_rounds", lv.cc_rounds);
      w.end_object();
    }
    w.end_object();
    w.kv("clean_comm_overhead_vs_none", sr.levels[1].overhead, 4);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "wrote " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  // Strip our flags before handing argv to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!smoke) {
    benchmark::RegisterBenchmark("Selective/plan+apply/hera/selective",
                                 [](benchmark::State& st) {
                                   bench_plan_and_apply(st, false);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::RegisterBenchmark("Selective/plan+apply/hera/blanket",
                                 [](benchmark::State& st) {
                                   bench_plan_and_apply(st, true);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  print_static_table();
  const int reps = smoke ? 3 : 7;
  const int loop_reps = smoke ? 150 : 400;
  const auto results = measure_scenarios(reps, loop_reps);
  print_scenarios(results, reps);
  if (!json_path.empty()) write_json(json_path, results);
  return 0;
}
