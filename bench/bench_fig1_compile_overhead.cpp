// Figure 1 — compile-time overhead of the verification, with and without
// verification code generation, on BT-MZ, SP-MZ, LU-MZ, the EPCC mixed-mode
// suite and HERA (synthetic skeletons; see DESIGN.md).
//
// Two outputs:
//   * google-benchmark timings for each (subject x mode) pair;
//   * a Figure-1-style summary table (median of repeated full compiles):
//       overhead% = 100 * (t_mode / t_baseline - 1)
//     for mode in {Warnings, Warnings+verification codegen}.
//
// The paper reports overheads up to ~6% (GCC middle end); the expected
// *shape* here is: warnings < warnings+codegen, both small single-digit
// percentages of the baseline compile.
#include "driver/pipeline.h"
#include "workloads/workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

const std::vector<workloads::GeneratedProgram>& subjects() {
  static const auto s = workloads::figure1_suite();
  return s;
}

driver::PipelineOptions options_for(driver::Mode mode) {
  driver::PipelineOptions opts;
  opts.mode = mode;
  return opts;
}

/// One full compile; returns wall nanoseconds.
double compile_ns(const SourceManager& sm, int32_t id, driver::Mode mode) {
  DiagnosticEngine diags;
  const auto start = std::chrono::steady_clock::now();
  const auto r = driver::compile_buffer(sm, id, diags, options_for(mode));
  benchmark::DoNotOptimize(r.emitted_bytes);
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!r.ok) std::abort();
  return static_cast<double>(ns.count());
}

void bench_compile(benchmark::State& state, size_t subject, driver::Mode mode) {
  SourceManager sm;
  const auto& g = subjects()[subject];
  const int32_t id = sm.add_buffer(g.name, g.source);
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto r = driver::compile_buffer(sm, id, diags, options_for(mode));
    benchmark::DoNotOptimize(r.emitted_bytes);
  }
  state.counters["code_lines"] =
      benchmark::Counter(static_cast<double>(g.code_lines));
}

void register_benchmarks() {
  static const struct {
    driver::Mode mode;
    const char* label;
  } kModes[] = {
      {driver::Mode::Baseline, "baseline"},
      {driver::Mode::Warnings, "warnings"},
      {driver::Mode::WarningsAndCodegen, "warnings+codegen"},
  };
  for (size_t s = 0; s < subjects().size(); ++s) {
    for (const auto& m : kModes) {
      benchmark::RegisterBenchmark(
          ("Fig1/" + subjects()[s].name + "/" + m.label).c_str(),
          [s, mode = m.mode](benchmark::State& st) { bench_compile(st, s, mode); })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.05);
    }
  }
}

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

void print_figure1_table() {
  constexpr int kReps = 15;
  std::cout << "\n=== Figure 1: compile-time overhead (best of " << kReps
            << " compiles; min is robust against machine noise) ===\n\n"
            << std::left << std::setw(12) << "program" << std::right
            << std::setw(8) << "lines" << std::setw(14) << "baseline ms"
            << std::setw(14) << "warnings %" << std::setw(18)
            << "warn+codegen %" << '\n';
  for (const auto& g : subjects()) {
    SourceManager sm;
    const int32_t id = sm.add_buffer(g.name, g.source);
    std::vector<double> base, warn, full;
    // Interleave modes so frequency scaling affects all three equally.
    for (int rep = 0; rep < kReps; ++rep) {
      base.push_back(compile_ns(sm, id, driver::Mode::Baseline));
      warn.push_back(compile_ns(sm, id, driver::Mode::Warnings));
      full.push_back(compile_ns(sm, id, driver::Mode::WarningsAndCodegen));
    }
    const double b = min_of(base);
    const double w = min_of(warn);
    const double f = min_of(full);
    std::cout << std::left << std::setw(12) << g.name << std::right
              << std::setw(8) << g.code_lines << std::setw(14) << std::fixed
              << std::setprecision(3) << b / 1e6 << std::setw(13)
              << std::setprecision(2) << 100.0 * (w / b - 1.0) << '%'
              << std::setw(17) << 100.0 * (f / b - 1.0) << '%' << '\n';
  }
  std::cout << "\npaper reference (GCC middle end, real suites): all "
               "overheads <= ~6%, codegen adds\non top of warnings-only. "
               "Shape to check: warnings% < warn+codegen%, both small.\n";
}

} // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure1_table();
  return 0;
}
