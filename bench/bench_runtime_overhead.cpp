// Execution-time overhead of the runtime checks ("The cost of the runtime
// checks is limited by a selective instrumentation, avoiding unnecessary
// checks" — Section 5).
//
// Three EPCC-style hybrid kernels run under four instrumentation levels:
//   none        uninstrumented execution
//   selective   the paper's plan. NOTE: collectives inside loops are
//               control-dependent on the loop conditional, so Algorithm 1
//               conservatively warns and arms the CC protocol even on these
//               clean kernels — exactly the original tool's behaviour.
//   taint       selective + rank-taint refinement: loop bounds are
//               rank-uniform, the warnings disappear, and so do the checks
//               (the refinement's runtime payoff).
//   blanket     checks at every site (the ablation upper bound).
// The summary reports wall-clock overhead vs `none`, the number of CC
// agreements actually executed, and the measured synchronization rounds per
// collective (1.0 with the piggybacked protocol — the CC id rides inside
// the application collective's own slot, so no dedicated round remains).
//
// Flags (accepted before the google-benchmark flags):
//   --json=PATH   write machine-readable results to PATH (BENCH_runtime.json
//                 in CI) with ns per kernel/level, overhead vs none, CC
//                 rounds and sync rounds per collective.
//   --smoke       skip the registered google-benchmark runs and produce the
//                 summary/JSON from fewer repetitions (CI smoke step).
#include "driver/pipeline.h"
#include "interp/executor.h"
#include "support/json_writer.h"
#include "support/str.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

struct Kernel {
  const char* name;
  std::string source;
};

std::vector<Kernel> kernels() {
  auto loop_kernel = [](const char* name, const char* body, int reps) {
    return Kernel{name, str::cat("func main() {\n  mpi_init(serialized);\n"
                                 "  var x = rank() + 1;\n  for (r = 0 to ",
                                 reps, ") {\n", body,
                                 "  }\n  mpi_finalize();\n}\n")};
  };
  return {
      loop_kernel("serialized_allreduce",
                  "    omp parallel num_threads(2) {\n"
                  "      omp single {\n"
                  "        x = mpi_allreduce(x, sum);\n"
                  "      }\n"
                  "      omp for nowait (i = 0 to 64) {\n"
                  "        var w = i * 2;\n"
                  "      }\n"
                  "      omp barrier;\n"
                  "    }\n",
                  150),
      loop_kernel("masteronly_bcast_reduce",
                  "    x = mpi_bcast(x, 0);\n"
                  "    x = mpi_reduce(x, sum, 0);\n"
                  "    omp parallel num_threads(2) {\n"
                  "      omp for (i = 0 to 64) {\n"
                  "        var w = i + r;\n"
                  "      }\n"
                  "    }\n",
                  150),
      loop_kernel("funneled_barrier",
                  "    omp parallel num_threads(2) {\n"
                  "      omp barrier;\n"
                  "      omp master {\n"
                  "        mpi_barrier();\n"
                  "      }\n"
                  "      omp barrier;\n"
                  "    }\n",
                  150),
  };
}

enum class Level { None, Selective, Taint, Blanket };

constexpr const char* kLevelNames[] = {"none", "selective", "taint", "blanket"};

struct Compiled {
  SourceManager sm;
  driver::CompileResult result;
  core::InstrumentationPlan taint_plan;
  core::InstrumentationPlan blanket;
};

std::unique_ptr<Compiled> compile_kernel(const Kernel& k) {
  auto c = std::make_unique<Compiled>();
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  c->result = driver::compile(c->sm, k.name, k.source, diags, opts);
  if (!c->result.ok) std::abort();
  c->blanket = core::make_blanket_plan(*c->result.module);
  {
    SourceManager sm2;
    DiagnosticEngine d2;
    driver::PipelineOptions o2;
    o2.mode = driver::Mode::WarningsAndCodegen;
    o2.algorithm1.rank_taint_filter = true;
    const auto r2 = driver::compile(sm2, k.name, k.source, d2, o2);
    if (!r2.ok) std::abort();
    c->taint_plan = r2.plan;
  }
  return c;
}

struct RunStats {
  double ns = 0;
  uint64_t cc_rounds = 0;         // CC agreements executed (piggybacked)
  double rounds_per_coll = 1.0;   // sync rounds per application collective
};

RunStats run_once(const Compiled& c, Level level) {
  const core::InstrumentationPlan* plan = nullptr;
  if (level == Level::Selective) plan = &c.result.plan;
  if (level == Level::Taint) plan = &c.taint_plan;
  if (level == Level::Blanket) plan = &c.blanket;
  interp::Executor exec(c.result.program, c.sm, plan);
  interp::ExecOptions eopts;
  eopts.num_ranks = 2;
  eopts.num_threads = 2;
  eopts.mpi.hang_timeout = std::chrono::milliseconds(5000);
  const auto start = std::chrono::steady_clock::now();
  const auto result = exec.run(eopts);
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!result.clean) std::abort();
  RunStats s;
  s.ns = static_cast<double>(ns.count());
  s.cc_rounds = result.mpi.cc_piggybacked + result.mpi.verifier_slots_completed;
  if (result.mpi.app_slots_completed > 0)
    s.rounds_per_coll =
        static_cast<double>(result.mpi.app_slots_completed +
                            result.mpi.verifier_slots_completed) /
        static_cast<double>(result.mpi.app_slots_completed);
  return s;
}

void bench_run(benchmark::State& state, size_t kernel, Level level) {
  static const auto ks = kernels();
  const auto c = compile_kernel(ks[kernel]);
  uint64_t cc = 0;
  for (auto _ : state) {
    const auto stats = run_once(*c, level);
    state.SetIterationTime(stats.ns / 1e9);
    cc = stats.cc_rounds;
  }
  state.counters["cc_rounds"] = benchmark::Counter(static_cast<double>(cc));
}

void register_benchmarks() {
  static const auto ks = kernels();
  static constexpr Level kLevels[] = {Level::None, Level::Selective,
                                      Level::Taint, Level::Blanket};
  for (size_t k = 0; k < ks.size(); ++k) {
    for (Level level : kLevels) {
      benchmark::RegisterBenchmark(
          (std::string("RuntimeOverhead/") + ks[k].name + "/" +
           kLevelNames[static_cast<size_t>(level)])
              .c_str(),
          [k, level](benchmark::State& st) { bench_run(st, k, level); })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(3);
    }
  }
}

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

struct LevelResult {
  double ns = 0;          // best-of-reps wall clock
  double overhead = 0;    // vs `none`, fractional
  uint64_t cc_rounds = 0;
  double rounds_per_coll = 1.0;
};

struct KernelResult {
  std::string kernel;
  LevelResult levels[4]; // indexed by Level
};

std::vector<KernelResult> measure_all(int reps) {
  std::vector<KernelResult> out;
  for (const auto& k : kernels()) {
    const auto c = compile_kernel(k);
    KernelResult kr;
    kr.kernel = k.name;
    std::vector<double> ns[4];
    for (int rep = 0; rep < reps; ++rep) {
      for (size_t l = 0; l < 4; ++l) {
        const auto s = run_once(*c, static_cast<Level>(l));
        ns[l].push_back(s.ns);
        kr.levels[l].cc_rounds = s.cc_rounds;
        kr.levels[l].rounds_per_coll = s.rounds_per_coll;
      }
    }
    for (size_t l = 0; l < 4; ++l) kr.levels[l].ns = min_of(ns[l]);
    for (size_t l = 0; l < 4; ++l)
      kr.levels[l].overhead = kr.levels[l].ns / kr.levels[0].ns - 1.0;
    out.push_back(std::move(kr));
  }
  return out;
}

void print_summary(const std::vector<KernelResult>& results, int reps) {
  std::cout << "\n=== Runtime-check overhead (2 ranks x 2 threads, best of "
            << reps << " runs) ===\n\n"
            << std::left << std::setw(26) << "kernel" << std::right
            << std::setw(12) << "none ms" << std::setw(14) << "selective %"
            << std::setw(10) << "taint %" << std::setw(12) << "blanket %"
            << std::setw(10) << "cc(sel)" << std::setw(10) << "cc(tnt)"
            << std::setw(10) << "cc(blkt)" << std::setw(12) << "rounds/coll"
            << '\n';
  for (const auto& kr : results) {
    std::cout << std::left << std::setw(26) << kr.kernel << std::right
              << std::setw(12) << std::fixed << std::setprecision(2)
              << kr.levels[0].ns / 1e6 << std::setw(13) << std::setprecision(1)
              << 100.0 * kr.levels[1].overhead << '%' << std::setw(9)
              << 100.0 * kr.levels[2].overhead << '%' << std::setw(11)
              << 100.0 * kr.levels[3].overhead << '%' << std::setw(10)
              << kr.levels[1].cc_rounds << std::setw(10)
              << kr.levels[2].cc_rounds << std::setw(10)
              << kr.levels[3].cc_rounds << std::setw(12)
              << std::setprecision(2) << kr.levels[3].rounds_per_coll << '\n';
  }
  std::cout << "\nShape to check: taint-refined plans drop to ~0% (zero CC "
               "rounds) on these clean\nkernels; unrefined selective pays "
               "CC on loop collectives (conservative Algorithm 1,\nas in "
               "the original tool); blanket is the upper bound. With the "
               "piggybacked protocol\nevery level runs 1.0 sync round per "
               "collective — the dedicated CC round is gone.\n";
}

void write_json(const std::string& path, const std::vector<KernelResult>& results) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("protocol", "piggybacked");
  w.kv("engine", to_string(interp::ExecOptions{}.engine));
  w.key("kernels");
  w.begin_array();
  for (const auto& kr : results) {
    w.begin_object();
    w.kv("kernel", kr.kernel);
    w.key("levels");
    w.begin_object();
    for (size_t l = 0; l < 4; ++l) {
      const auto& lv = kr.levels[l];
      w.key(kLevelNames[l]);
      w.begin_object();
      w.kv("ns", static_cast<int64_t>(lv.ns));
      w.kv("overhead_vs_none", lv.overhead, 4);
      w.kv("cc_rounds", lv.cc_rounds);
      w.kv("sync_rounds_per_collective", lv.rounds_per_coll, 4);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "wrote " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  // Strip our flags before handing argv to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!smoke) {
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const int reps = smoke ? 2 : 5;
  const auto results = measure_all(reps);
  print_summary(results, reps);
  if (!json_path.empty()) write_json(json_path, results);
  return 0;
}
