// Execution-time overhead of the runtime checks ("The cost of the runtime
// checks is limited by a selective instrumentation, avoiding unnecessary
// checks" — Section 5).
//
// Three EPCC-style hybrid kernels run under four instrumentation levels:
//   none        uninstrumented execution
//   selective   the paper's plan. NOTE: collectives inside loops are
//               control-dependent on the loop conditional, so Algorithm 1
//               conservatively warns and arms the CC protocol even on these
//               clean kernels — exactly the original tool's behaviour.
//   taint       selective + rank-taint refinement: loop bounds are
//               rank-uniform, the warnings disappear, and so do the checks
//               (the refinement's runtime payoff).
//   blanket     checks at every site (the ablation upper bound).
// The summary reports wall-clock overhead vs `none` and the number of CC
// rounds actually executed (verifier communicator slots).
#include "driver/pipeline.h"
#include "interp/executor.h"
#include "support/str.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iomanip>
#include <iostream>

namespace {

using namespace parcoach;

struct Kernel {
  const char* name;
  std::string source;
};

std::vector<Kernel> kernels() {
  auto loop_kernel = [](const char* name, const char* body, int reps) {
    return Kernel{name, str::cat("func main() {\n  mpi_init(serialized);\n"
                                 "  var x = rank() + 1;\n  for (r = 0 to ",
                                 reps, ") {\n", body,
                                 "  }\n  mpi_finalize();\n}\n")};
  };
  return {
      loop_kernel("serialized_allreduce",
                  "    omp parallel num_threads(2) {\n"
                  "      omp single {\n"
                  "        x = mpi_allreduce(x, sum);\n"
                  "      }\n"
                  "      omp for nowait (i = 0 to 64) {\n"
                  "        var w = i * 2;\n"
                  "      }\n"
                  "      omp barrier;\n"
                  "    }\n",
                  150),
      loop_kernel("masteronly_bcast_reduce",
                  "    x = mpi_bcast(x, 0);\n"
                  "    x = mpi_reduce(x, sum, 0);\n"
                  "    omp parallel num_threads(2) {\n"
                  "      omp for (i = 0 to 64) {\n"
                  "        var w = i + r;\n"
                  "      }\n"
                  "    }\n",
                  150),
      loop_kernel("funneled_barrier",
                  "    omp parallel num_threads(2) {\n"
                  "      omp barrier;\n"
                  "      omp master {\n"
                  "        mpi_barrier();\n"
                  "      }\n"
                  "      omp barrier;\n"
                  "    }\n",
                  150),
  };
}

enum class Level { None, Selective, Taint, Blanket };

struct Compiled {
  SourceManager sm;
  driver::CompileResult result;
  core::InstrumentationPlan taint_plan;
  core::InstrumentationPlan blanket;
};

std::unique_ptr<Compiled> compile_kernel(const Kernel& k) {
  auto c = std::make_unique<Compiled>();
  DiagnosticEngine diags;
  driver::PipelineOptions opts;
  opts.mode = driver::Mode::WarningsAndCodegen;
  c->result = driver::compile(c->sm, k.name, k.source, diags, opts);
  if (!c->result.ok) std::abort();
  c->blanket = core::make_blanket_plan(*c->result.module);
  {
    SourceManager sm2;
    DiagnosticEngine d2;
    driver::PipelineOptions o2;
    o2.mode = driver::Mode::WarningsAndCodegen;
    o2.algorithm1.rank_taint_filter = true;
    const auto r2 = driver::compile(sm2, k.name, k.source, d2, o2);
    if (!r2.ok) std::abort();
    c->taint_plan = r2.plan;
  }
  return c;
}

struct RunStats {
  double ns = 0;
  uint64_t cc_rounds = 0;
};

RunStats run_once(const Compiled& c, Level level) {
  const core::InstrumentationPlan* plan = nullptr;
  if (level == Level::Selective) plan = &c.result.plan;
  if (level == Level::Taint) plan = &c.taint_plan;
  if (level == Level::Blanket) plan = &c.blanket;
  interp::Executor exec(c.result.program, c.sm, plan);
  interp::ExecOptions eopts;
  eopts.num_ranks = 2;
  eopts.num_threads = 2;
  eopts.mpi.hang_timeout = std::chrono::milliseconds(5000);
  const auto start = std::chrono::steady_clock::now();
  const auto result = exec.run(eopts);
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!result.clean) std::abort();
  return RunStats{static_cast<double>(ns.count()),
                  result.mpi.verifier_slots_completed};
}

void bench_run(benchmark::State& state, size_t kernel, Level level) {
  static const auto ks = kernels();
  const auto c = compile_kernel(ks[kernel]);
  uint64_t cc = 0;
  for (auto _ : state) {
    const auto stats = run_once(*c, level);
    state.SetIterationTime(stats.ns / 1e9);
    cc = stats.cc_rounds;
  }
  state.counters["cc_rounds"] = benchmark::Counter(static_cast<double>(cc));
}

void register_benchmarks() {
  static const auto ks = kernels();
  static const struct {
    Level level;
    const char* label;
  } kLevels[] = {{Level::None, "none"},
                 {Level::Selective, "selective"},
                 {Level::Taint, "taint"},
                 {Level::Blanket, "blanket"}};
  for (size_t k = 0; k < ks.size(); ++k) {
    for (const auto& l : kLevels) {
      benchmark::RegisterBenchmark(
          (std::string("RuntimeOverhead/") + ks[k].name + "/" + l.label).c_str(),
          [k, level = l.level](benchmark::State& st) { bench_run(st, k, level); })
          ->Unit(benchmark::kMillisecond)
          ->UseManualTime()
          ->Iterations(3);
    }
  }
}

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

void print_summary() {
  constexpr int kReps = 5;
  std::cout << "\n=== Runtime-check overhead (2 ranks x 2 threads, best of "
            << kReps << " runs) ===\n\n"
            << std::left << std::setw(26) << "kernel" << std::right
            << std::setw(12) << "none ms" << std::setw(14) << "selective %"
            << std::setw(10) << "taint %" << std::setw(12) << "blanket %"
            << std::setw(10) << "cc(sel)" << std::setw(10) << "cc(tnt)"
            << std::setw(10) << "cc(blkt)" << '\n';
  for (const auto& k : kernels()) {
    const auto c = compile_kernel(k);
    std::vector<double> none, sel, tnt, blk;
    uint64_t cc_sel = 0, cc_tnt = 0, cc_blk = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      none.push_back(run_once(*c, Level::None).ns);
      const auto s = run_once(*c, Level::Selective);
      sel.push_back(s.ns);
      cc_sel = s.cc_rounds;
      const auto t = run_once(*c, Level::Taint);
      tnt.push_back(t.ns);
      cc_tnt = t.cc_rounds;
      const auto b = run_once(*c, Level::Blanket);
      blk.push_back(b.ns);
      cc_blk = b.cc_rounds;
    }
    const double n = min_of(none);
    std::cout << std::left << std::setw(26) << k.name << std::right
              << std::setw(12) << std::fixed << std::setprecision(2) << n / 1e6
              << std::setw(13) << std::setprecision(1)
              << 100.0 * (min_of(sel) / n - 1.0) << '%' << std::setw(9)
              << 100.0 * (min_of(tnt) / n - 1.0) << '%' << std::setw(11)
              << 100.0 * (min_of(blk) / n - 1.0) << '%' << std::setw(10)
              << cc_sel << std::setw(10) << cc_tnt << std::setw(10) << cc_blk
              << '\n';
  }
  std::cout << "\nShape to check: taint-refined plans drop to ~0% (zero CC "
               "rounds) on these clean\nkernels; unrefined selective pays "
               "CC on loop collectives (conservative Algorithm 1,\nas in "
               "the original tool); blanket is the upper bound.\n";
}

} // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
