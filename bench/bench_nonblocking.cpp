// Nonblocking-collectives micro-benchmark: issue+wait latency of the request
// engine versus its blocking counterpart, and the overlap win from keeping a
// window of outstanding requests in flight before draining with waitall.
// Keeps the request engine honest: issue must stay cheap (no blocking work),
// and deep windows must not degrade (slot bookkeeping is O(1) amortized).
#include "simmpi/world.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace parcoach;
using simmpi::Rank;

enum class Shape {
  BlockingAllreduce,  // baseline: allreduce per round
  IssueWait,          // iallreduce immediately waited (no overlap)
  Window4,            // 4 outstanding iallreduces, then waitall
  Window16,           // 16 outstanding
  IbarrierPoll,       // ibarrier completed by a test-poll loop
};

const char* name_of(Shape s) {
  switch (s) {
    case Shape::BlockingAllreduce: return "blocking";
    case Shape::IssueWait: return "issue+wait";
    case Shape::Window4: return "window4";
    case Shape::Window16: return "window16";
    case Shape::IbarrierPoll: return "ibarrier-poll";
  }
  return "?";
}

void run_shape(Rank& mpi, Shape s, int rounds) {
  switch (s) {
    case Shape::BlockingAllreduce:
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(mpi.allreduce(i, simmpi::ReduceOp::Sum));
      break;
    case Shape::IssueWait:
      for (int i = 0; i < rounds; ++i)
        benchmark::DoNotOptimize(
            mpi.wait(mpi.iallreduce(i, simmpi::ReduceOp::Sum)));
      break;
    case Shape::Window4:
    case Shape::Window16: {
      const int window = s == Shape::Window4 ? 4 : 16;
      for (int i = 0; i < rounds; i += window) {
        std::vector<int64_t> reqs;
        reqs.reserve(static_cast<size_t>(window));
        for (int k = 0; k < window; ++k)
          reqs.push_back(mpi.iallreduce(i + k, simmpi::ReduceOp::Sum));
        mpi.waitall(reqs);
      }
      break;
    }
    case Shape::IbarrierPoll:
      for (int i = 0; i < rounds; ++i) {
        const int64_t r = mpi.ibarrier();
        while (!mpi.test(r).has_value()) std::this_thread::yield();
      }
      break;
  }
}

double shape_latency_ns(Shape s, int32_t ranks, int rounds) {
  simmpi::World::Options wopts;
  wopts.num_ranks = ranks;
  wopts.hang_timeout = std::chrono::milliseconds(10000);
  simmpi::World world(wopts);
  const auto start = std::chrono::steady_clock::now();
  const auto rep = world.run([&](Rank& mpi) { run_shape(mpi, s, rounds); });
  const auto ns = std::chrono::steady_clock::now() - start;
  if (!rep.ok || !rep.leaked_requests.empty()) std::abort();
  return static_cast<double>(ns.count()) / rounds;
}

void bench_shape(benchmark::State& state, Shape s) {
  const int32_t ranks = static_cast<int32_t>(state.range(0));
  constexpr int kRounds = 256;
  for (auto _ : state)
    state.SetIterationTime(shape_latency_ns(s, ranks, kRounds) * kRounds / 1e9);
  state.SetItemsProcessed(state.iterations() * kRounds);
}

void print_summary() {
  std::cout << "\n=== nonblocking collectives (ns/op) ===\n\nshape         ";
  for (int32_t ranks : {2, 4, 8}) std::cout << "  ranks=" << ranks << "  ";
  std::cout << '\n';
  for (Shape s : {Shape::BlockingAllreduce, Shape::IssueWait, Shape::Window4,
                  Shape::Window16, Shape::IbarrierPoll}) {
    std::cout << name_of(s);
    for (size_t pad = std::string(name_of(s)).size(); pad < 14; ++pad)
      std::cout << ' ';
    for (int32_t ranks : {2, 4, 8})
      std::cout << "  " << static_cast<long>(shape_latency_ns(s, ranks, 512))
                << "      ";
    std::cout << '\n';
  }
}

} // namespace

int main(int argc, char** argv) {
  for (Shape s : {Shape::BlockingAllreduce, Shape::IssueWait, Shape::Window4,
                  Shape::Window16, Shape::IbarrierPoll}) {
    benchmark::RegisterBenchmark(
        (std::string("Nonblocking/") + name_of(s)).c_str(),
        [s](benchmark::State& st) { bench_shape(st, s); })
        ->Arg(2)
        ->Arg(4)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
